package workload

import (
	"fmt"
	"math/rand"

	"saga/internal/importance"
	"saga/internal/triple"
)

// MentionSpec sizes the NERD evaluation corpus (Figure 14). The corpus has
// ambiguous surface forms: groups of entities share a name and are only
// distinguishable through relational context, with Zipf-skewed popularity so
// one member of each group is the head entity and the rest are tails.
type MentionSpec struct {
	// Groups is the number of ambiguous name groups.
	Groups int
	// PerGroup is the number of entities sharing each name.
	PerGroup int
	// Mentions is the corpus size.
	Mentions int
	// TailBias is the probability a mention refers to a non-head member;
	// higher values stress context reasoning. Default 0.5.
	TailBias float64
	// ContextDropout is the fraction of mentions whose context carries no
	// discriminating anchor (generic text), bounding any context model's
	// achievable high-confidence recall.
	ContextDropout float64
	Seed           int64
}

// LabeledMention is one corpus entry with its ground-truth entity.
type LabeledMention struct {
	Text     string
	Context  string
	TypeHint string
	Truth    triple.EntityID
}

// MentionWorld is the generated evaluation universe: the KG, its importance
// scores, and the labeled corpus.
type MentionWorld struct {
	Graph  *triple.Graph
	Scores map[triple.EntityID]importance.Scores
	Corpus []LabeledMention
	// TypedCorpus mirrors Corpus with ontology type hints set (the object-
	// resolution workload of Figure 14(b)).
	TypedCorpus []LabeledMention
}

// Generate builds the world. Each group g has entities sharing the name
// "N(g)"; member 0 is the head (many in-links, popular), members 1..k are
// tails. Every member has a distinct discriminating neighbour entity
// ("anchor"), and mention contexts quote the true member's anchor name, so
// context identifies the referent while surface form alone cannot.
func (m MentionSpec) Generate() *MentionWorld {
	if m.TailBias == 0 {
		m.TailBias = 0.5
	}
	rng := rand.New(rand.NewSource(m.Seed))
	g := triple.NewGraph()
	add := func(id, typ, name, desc string) *triple.Entity {
		e := triple.NewEntity(triple.EntityID(id))
		a := func(p string, v triple.Value) { e.Add(triple.New("", p, v).WithSource("wiki", 0.9)) }
		a(triple.PredType, triple.String(typ))
		a(triple.PredName, triple.String(name))
		if desc != "" {
			a("description", triple.String(desc))
		}
		return e
	}
	types := []string{"city", "human", "school", "sports_team"}
	memberID := func(grp, member int) triple.EntityID {
		return triple.EntityID(fmt.Sprintf("kg:G%03dM%d", grp, member))
	}
	anchorID := func(grp, member int) triple.EntityID {
		return triple.EntityID(fmt.Sprintf("kg:G%03dA%d", grp, member))
	}
	anchorName := func(grp, member int) string {
		return fmt.Sprintf("%s %s institute", SongTitle(grp*7+member), lastNames[(grp+member)%len(lastNames)])
	}
	for grp := 0; grp < m.Groups; grp++ {
		name := CityName(grp)
		typ := types[grp%len(types)]
		for member := 0; member < m.PerGroup; member++ {
			ent := add(string(memberID(grp, member)), typ, name,
				fmt.Sprintf("the %s number %d", typ, member))
			// Discriminating anchor neighbour.
			anchor := add(string(anchorID(grp, member)), "organization", anchorName(grp, member), "")
			anchor.Add(triple.New("", "located_in", triple.Ref(memberID(grp, member))).WithSource("wiki", 0.9))
			g.Put(anchor)
			// Head member gets popularity: extra in-links, varying across
			// groups so head importance (and hence popularity-model
			// confidence) spreads rather than saturating.
			if member == 0 {
				for f := 0; f < 2+(8+grp)%9; f++ {
					fan := add(fmt.Sprintf("kg:G%03dF%d", grp, f), "organization",
						fmt.Sprintf("fan org %d of %d", f, grp), "")
					fan.Add(triple.New("", "located_in", triple.Ref(memberID(grp, 0))).WithSource("wiki", 0.9))
					g.Put(fan)
				}
			}
			g.Put(ent)
		}
	}
	scores := importance.Compute(g, importance.Options{})

	world := &MentionWorld{Graph: g, Scores: scores}
	zipf := NewZipf(rng, 1.4, m.Groups)
	for i := 0; i < m.Mentions; i++ {
		grp := zipf.Draw()
		member := 0
		if rng.Float64() < m.TailBias {
			member = 1 + rng.Intn(m.PerGroup-1)
		}
		truth := memberID(grp, member)
		ctx := fmt.Sprintf("we stopped by %s on the way to the %s downtown",
			CityName(grp), anchorName(grp, member))
		if rng.Float64() < m.ContextDropout {
			ctx = fmt.Sprintf("thinking about a trip to %s sometime soon", CityName(grp))
		}
		lm := LabeledMention{Text: CityName(grp), Context: ctx, Truth: truth}
		world.Corpus = append(world.Corpus, lm)
		lm.TypeHint = types[grp%len(types)]
		world.TypedCorpus = append(world.TypedCorpus, lm)
	}
	return world
}
