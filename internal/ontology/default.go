package ontology

import "saga/internal/triple"

// Default builds the open-domain ontology used by the examples, workloads,
// and experiments in this repository. It covers the verticals the paper's
// introduction and evaluation mention: people, music (artists, songs, albums,
// playlists), movies, sports (teams, games), finance (stocks), and geography.
// The ontology is returned frozen.
func Default() *Ontology {
	o := New()
	must := func(err error) {
		if err != nil {
			panic("ontology: building default ontology: " + err.Error())
		}
	}

	for _, t := range []Type{
		{Name: "entity"},
		{Name: "agent", Parent: "entity"},
		{Name: "human", Parent: "agent"},
		{Name: "music_artist", Parent: "human"},
		{Name: "athlete", Parent: "human"},
		{Name: "organization", Parent: "agent"},
		{Name: "school", Parent: "organization"},
		{Name: "record_label", Parent: "organization"},
		{Name: "sports_team", Parent: "organization"},
		{Name: "company", Parent: "organization"},
		{Name: "creative_work", Parent: "entity"},
		{Name: "song", Parent: "creative_work"},
		{Name: "album", Parent: "creative_work"},
		{Name: "playlist", Parent: "creative_work"},
		{Name: "movie", Parent: "creative_work"},
		{Name: "place", Parent: "entity"},
		{Name: "city", Parent: "place"},
		{Name: "country", Parent: "place"},
		{Name: "venue", Parent: "place"},
		{Name: "mountain", Parent: "place"},
		{Name: "event", Parent: "entity"},
		{Name: "sports_game", Parent: "event"},
		{Name: "stock", Parent: "entity"},
		{Name: "flight", Parent: "event"},
	} {
		must(o.AddType(t))
	}

	for _, p := range []Predicate{
		// Open-domain predicates.
		{Name: triple.PredType, Range: triple.KindString},
		{Name: triple.PredName, Range: triple.KindString, Card: Functional},
		{Name: triple.PredAlias, Range: triple.KindString},
		{Name: triple.PredSameAs, Range: triple.KindRef},
		{Name: triple.PredSourceID, Range: triple.KindString},
		{Name: "description", Range: triple.KindString, Card: Functional},
		{Name: "popularity", Range: triple.KindFloat, Card: Functional, Volatile: true},

		// People.
		{Name: "birth_date", Domain: []string{"human"}, Range: triple.KindTime, Card: Functional},
		{Name: "birth_place", Domain: []string{"human"}, Range: triple.KindRef, RefType: "place", Card: Functional},
		{Name: "occupation", Domain: []string{"human"}, Range: triple.KindString},
		{Name: "spouse", Domain: []string{"human"}, Range: triple.KindRef, RefType: "human", Card: Functional},
		{Name: "educated_at", Domain: []string{"human"}, Composite: true,
			RelPreds: []string{"school", "degree", "year"}},

		// Music.
		{Name: "performed_by", Domain: []string{"song", "album"}, Range: triple.KindRef, RefType: "music_artist"},
		{Name: "part_of_album", Domain: []string{"song"}, Range: triple.KindRef, RefType: "album"},
		{Name: "signed_to", Domain: []string{"music_artist"}, Range: triple.KindRef, RefType: "record_label"},
		{Name: "genre", Domain: []string{"song", "album", "music_artist", "movie"}, Range: triple.KindString},
		{Name: "track", Domain: []string{"playlist"}, Range: triple.KindRef, RefType: "song"},
		{Name: "curated_by", Domain: []string{"playlist"}, Range: triple.KindRef, RefType: "agent"},
		{Name: "release_year", Domain: []string{"song", "album", "movie"}, Range: triple.KindInt, Card: Functional},
		{Name: "duration_sec", Domain: []string{"song"}, Range: triple.KindInt, Card: Functional},
		{Name: "play_count", Domain: []string{"song", "album"}, Range: triple.KindInt, Card: Functional, Volatile: true},

		// Movies.
		{Name: "directed_by", Domain: []string{"movie"}, Range: triple.KindRef, RefType: "human"},
		{Name: "cast_member", Domain: []string{"movie"}, Composite: true,
			RelPreds: []string{"actor", "character", "billing"}},
		{Name: "full_title", Domain: []string{"movie"}, Range: triple.KindString, Card: Functional},

		// Geography and organizations.
		{Name: "located_in", Domain: []string{"place", "organization"}, Range: triple.KindRef, RefType: "place", Card: Functional},
		{Name: "capital", Domain: []string{"country"}, Range: triple.KindRef, RefType: "city", Card: Functional},
		{Name: "mayor", Domain: []string{"city"}, Range: triple.KindRef, RefType: "human", Card: Functional},
		{Name: "head_of_state", Domain: []string{"country"}, Range: triple.KindRef, RefType: "human", Card: Functional},
		{Name: "population", Domain: []string{"place"}, Range: triple.KindInt, Card: Functional},
		{Name: "elevation_m", Domain: []string{"mountain"}, Range: triple.KindInt, Card: Functional},

		// Sports (live sources).
		{Name: "home_team", Domain: []string{"sports_game"}, Range: triple.KindRef, RefType: "sports_team", Card: Functional},
		{Name: "away_team", Domain: []string{"sports_game"}, Range: triple.KindRef, RefType: "sports_team", Card: Functional},
		{Name: "home_score", Domain: []string{"sports_game"}, Range: triple.KindInt, Card: Functional, Volatile: true},
		{Name: "away_score", Domain: []string{"sports_game"}, Range: triple.KindInt, Card: Functional, Volatile: true},
		{Name: "game_status", Domain: []string{"sports_game"}, Range: triple.KindString, Card: Functional, Volatile: true},
		{Name: "game_venue", Domain: []string{"sports_game"}, Range: triple.KindRef, RefType: "venue", Card: Functional},
		{Name: "plays_in_city", Domain: []string{"sports_team"}, Range: triple.KindRef, RefType: "city", Card: Functional},

		// Finance and flights (live sources).
		{Name: "ticker", Domain: []string{"stock"}, Range: triple.KindString, Card: Functional},
		{Name: "price", Domain: []string{"stock"}, Range: triple.KindFloat, Card: Functional, Volatile: true},
		{Name: "issued_by", Domain: []string{"stock"}, Range: triple.KindRef, RefType: "company", Card: Functional},
		{Name: "flight_status", Domain: []string{"flight"}, Range: triple.KindString, Card: Functional, Volatile: true},
		{Name: "departs_from", Domain: []string{"flight"}, Range: triple.KindRef, RefType: "place", Card: Functional},
		{Name: "arrives_at", Domain: []string{"flight"}, Range: triple.KindRef, RefType: "place", Card: Functional},
	} {
		must(o.AddPredicate(p))
	}

	o.Freeze()
	return o
}
