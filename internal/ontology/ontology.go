// Package ontology implements Saga's in-house open-domain ontology (§2.1):
// the controlled vocabulary of entity types and predicates that ingested data
// is aligned to, together with the constraints (domains, ranges, cardinality,
// volatility) that construction and truth discovery enforce.
package ontology

import (
	"fmt"
	"sort"
	"sync"

	"saga/internal/triple"
)

// Cardinality constrains how many objects a predicate admits per subject.
type Cardinality uint8

const (
	// Multi predicates admit any number of objects (for example "alias").
	Multi Cardinality = iota
	// Functional predicates admit at most one object per subject and locale
	// (for example "birth_date"). Conflicting observations from different
	// sources are resolved by truth discovery.
	Functional
)

// Predicate describes one predicate in the ontology.
type Predicate struct {
	// Name is the canonical predicate name in the KG namespace.
	Name string
	// Domain lists the entity types the predicate may appear on. Empty means
	// unrestricted (open-domain predicates such as "name").
	Domain []string
	// Range is the expected object kind. KindNull means unrestricted.
	Range triple.Kind
	// RefType, for reference-valued predicates, names the expected type of
	// the referenced entity ("educated_at.school" points at "school").
	RefType string
	// Card is the cardinality constraint.
	Card Cardinality
	// Volatile marks high-churn predicates (popularity, score) whose updates
	// bypass delta payloads and flow through partition overwrite (§2.4).
	Volatile bool
	// Composite marks predicates whose facts form relationship nodes with
	// the listed relationship predicates.
	Composite bool
	// RelPreds lists the admissible relationship predicates of a composite
	// predicate, for example school/degree/year under educated_at.
	RelPreds []string
}

// Type describes one entity type in the ontology's type hierarchy.
type Type struct {
	// Name is the canonical type name.
	Name string
	// Parent is the supertype name, or "" for a root type.
	Parent string
}

// Ontology is an immutable-after-build registry of types and predicates.
// A single Ontology is shared across the platform; reads are lock-free after
// Freeze and the builder methods are mutex-guarded before it.
type Ontology struct {
	mu         sync.RWMutex
	frozen     bool
	types      map[string]Type
	predicates map[string]Predicate
}

// New constructs an empty ontology.
func New() *Ontology {
	return &Ontology{
		types:      make(map[string]Type),
		predicates: make(map[string]Predicate),
	}
}

// AddType registers an entity type. Registering a type twice or after Freeze
// is an error, as is a dangling parent.
func (o *Ontology) AddType(t Type) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.frozen {
		return fmt.Errorf("ontology: AddType(%s) after Freeze", t.Name)
	}
	if t.Name == "" {
		return fmt.Errorf("ontology: type with empty name")
	}
	if _, dup := o.types[t.Name]; dup {
		return fmt.Errorf("ontology: duplicate type %q", t.Name)
	}
	if t.Parent != "" {
		if _, ok := o.types[t.Parent]; !ok {
			return fmt.Errorf("ontology: type %q has unknown parent %q", t.Name, t.Parent)
		}
	}
	o.types[t.Name] = t
	return nil
}

// AddPredicate registers a predicate definition.
func (o *Ontology) AddPredicate(p Predicate) error {
	o.mu.Lock()
	defer o.mu.Unlock()
	if o.frozen {
		return fmt.Errorf("ontology: AddPredicate(%s) after Freeze", p.Name)
	}
	if p.Name == "" {
		return fmt.Errorf("ontology: predicate with empty name")
	}
	if _, dup := o.predicates[p.Name]; dup {
		return fmt.Errorf("ontology: duplicate predicate %q", p.Name)
	}
	for _, d := range p.Domain {
		if _, ok := o.types[d]; !ok {
			return fmt.Errorf("ontology: predicate %q domain references unknown type %q", p.Name, d)
		}
	}
	if p.RefType != "" {
		if _, ok := o.types[p.RefType]; !ok {
			return fmt.Errorf("ontology: predicate %q range references unknown type %q", p.Name, p.RefType)
		}
	}
	if p.Composite && len(p.RelPreds) == 0 {
		return fmt.Errorf("ontology: composite predicate %q lists no relationship predicates", p.Name)
	}
	o.predicates[p.Name] = p
	return nil
}

// Freeze makes the ontology immutable. Construction pipelines call Freeze
// before sharing the ontology across goroutines.
func (o *Ontology) Freeze() {
	o.mu.Lock()
	o.frozen = true
	o.mu.Unlock()
}

// HasType reports whether the type is registered.
func (o *Ontology) HasType(name string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	_, ok := o.types[name]
	return ok
}

// Predicate returns the predicate definition and whether it exists.
func (o *Ontology) Predicate(name string) (Predicate, bool) {
	o.mu.RLock()
	defer o.mu.RUnlock()
	p, ok := o.predicates[name]
	return p, ok
}

// Types returns all registered type names, sorted.
func (o *Ontology) Types() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.types))
	for name := range o.types {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// Predicates returns all registered predicate names, sorted.
func (o *Ontology) Predicates() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	out := make([]string, 0, len(o.predicates))
	for name := range o.predicates {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// IsA reports whether type name is, or transitively inherits from, ancestor.
func (o *Ontology) IsA(name, ancestor string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	for name != "" {
		if name == ancestor {
			return true
		}
		t, ok := o.types[name]
		if !ok {
			return false
		}
		name = t.Parent
	}
	return false
}

// Ancestors returns the inheritance chain of the type from itself up to its
// root, or nil for unknown types.
func (o *Ontology) Ancestors(name string) []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []string
	for name != "" {
		t, ok := o.types[name]
		if !ok {
			return out
		}
		out = append(out, name)
		name = t.Parent
	}
	return out
}

// CompatibleTypes reports whether two type names could describe the same
// real-world entity: equal, or one inherits from the other. Linking uses this
// to reject pairs across incompatible types.
func (o *Ontology) CompatibleTypes(a, b string) bool {
	if a == "" || b == "" {
		return true // untyped entities are not constrained
	}
	return o.IsA(a, b) || o.IsA(b, a)
}

// VolatilePredicates returns the names of volatile predicates, sorted.
func (o *Ontology) VolatilePredicates() []string {
	o.mu.RLock()
	defer o.mu.RUnlock()
	var out []string
	for name, p := range o.predicates {
		if p.Volatile {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// IsVolatile reports whether the predicate is registered as volatile.
func (o *Ontology) IsVolatile(pred string) bool {
	o.mu.RLock()
	defer o.mu.RUnlock()
	p, ok := o.predicates[pred]
	return ok && p.Volatile
}

// Violation describes one ontology-constraint violation on an entity.
type Violation struct {
	Entity    triple.EntityID
	Predicate string
	Reason    string
}

func (v Violation) String() string {
	return fmt.Sprintf("%s/%s: %s", v.Entity, v.Predicate, v.Reason)
}

// Validate checks an entity payload against the ontology and returns every
// violation found. Unknown predicates are violations: ingestion must align
// all source predicates to the ontology before export (§2.2).
func (o *Ontology) Validate(e *triple.Entity) []Violation {
	var out []Violation
	add := func(pred, reason string) {
		out = append(out, Violation{Entity: e.ID, Predicate: pred, Reason: reason})
	}
	etype := e.Type()
	if etype != "" && !o.HasType(etype) {
		add(triple.PredType, fmt.Sprintf("unknown entity type %q", etype))
	}
	seenFunctional := make(map[string]bool)
	for _, t := range e.Triples {
		p, ok := o.Predicate(t.Predicate)
		if !ok {
			add(t.Predicate, "predicate not in ontology")
			continue
		}
		if len(p.Domain) > 0 && etype != "" {
			inDomain := false
			for _, d := range p.Domain {
				if o.IsA(etype, d) {
					inDomain = true
					break
				}
			}
			if !inDomain {
				add(t.Predicate, fmt.Sprintf("type %q outside predicate domain %v", etype, p.Domain))
			}
		}
		if t.IsComposite() {
			if !p.Composite {
				add(t.Predicate, "relationship rows on a non-composite predicate")
			} else if !contains(p.RelPreds, t.RelPred) {
				add(t.Predicate, fmt.Sprintf("unknown relationship predicate %q", t.RelPred))
			}
		} else {
			if p.Composite {
				add(t.Predicate, "simple fact on a composite predicate")
			}
			if p.Range != triple.KindNull && t.Object.Kind() != p.Range && !t.Object.IsNull() {
				add(t.Predicate, fmt.Sprintf("object kind %s, want %s", t.Object.Kind(), p.Range))
			}
			if p.Card == Functional {
				key := t.Predicate + "\x1f" + t.Locale
				if seenFunctional[key] {
					add(t.Predicate, "multiple objects on a functional predicate")
				}
				seenFunctional[key] = true
			}
		}
	}
	return out
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}
