package ontology

import (
	"strings"
	"testing"
	"time"

	"saga/internal/triple"
)

func buildSmall(t *testing.T) *Ontology {
	t.Helper()
	o := New()
	for _, typ := range []Type{
		{Name: "entity"},
		{Name: "agent", Parent: "entity"},
		{Name: "human", Parent: "agent"},
		{Name: "place", Parent: "entity"},
	} {
		if err := o.AddType(typ); err != nil {
			t.Fatalf("AddType: %v", err)
		}
	}
	for _, p := range []Predicate{
		{Name: "type", Range: triple.KindString},
		{Name: "name", Range: triple.KindString, Card: Functional},
		{Name: "birth_date", Domain: []string{"human"}, Range: triple.KindTime, Card: Functional},
		{Name: "popularity", Range: triple.KindFloat, Volatile: true},
		{Name: "educated_at", Domain: []string{"human"}, Composite: true, RelPreds: []string{"school", "year"}},
	} {
		if err := o.AddPredicate(p); err != nil {
			t.Fatalf("AddPredicate: %v", err)
		}
	}
	return o
}

func TestBuilderErrors(t *testing.T) {
	o := buildSmall(t)
	if err := o.AddType(Type{Name: "human"}); err == nil {
		t.Error("duplicate type accepted")
	}
	if err := o.AddType(Type{Name: "x", Parent: "ghost"}); err == nil {
		t.Error("dangling parent accepted")
	}
	if err := o.AddType(Type{}); err == nil {
		t.Error("empty type name accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "name"}); err == nil {
		t.Error("duplicate predicate accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "p", Domain: []string{"ghost"}}); err == nil {
		t.Error("dangling domain accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "p", RefType: "ghost"}); err == nil {
		t.Error("dangling ref type accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "p", Composite: true}); err == nil {
		t.Error("composite without rel preds accepted")
	}
	o.Freeze()
	if err := o.AddType(Type{Name: "late"}); err == nil {
		t.Error("AddType after Freeze accepted")
	}
	if err := o.AddPredicate(Predicate{Name: "late"}); err == nil {
		t.Error("AddPredicate after Freeze accepted")
	}
}

func TestHierarchy(t *testing.T) {
	o := buildSmall(t)
	if !o.IsA("human", "entity") || !o.IsA("human", "human") {
		t.Error("IsA transitive/reflexive failure")
	}
	if o.IsA("entity", "human") {
		t.Error("IsA inverted")
	}
	if o.IsA("ghost", "entity") {
		t.Error("unknown type IsA anything")
	}
	anc := o.Ancestors("human")
	if strings.Join(anc, ",") != "human,agent,entity" {
		t.Errorf("Ancestors = %v", anc)
	}
	if !o.CompatibleTypes("human", "agent") || !o.CompatibleTypes("agent", "human") {
		t.Error("ancestor/descendant should be compatible")
	}
	if o.CompatibleTypes("human", "place") {
		t.Error("siblings should be incompatible")
	}
	if !o.CompatibleTypes("", "place") {
		t.Error("untyped must be compatible with anything")
	}
}

func TestVolatile(t *testing.T) {
	o := buildSmall(t)
	if !o.IsVolatile("popularity") || o.IsVolatile("name") || o.IsVolatile("ghost") {
		t.Error("IsVolatile misreports")
	}
	vol := o.VolatilePredicates()
	if len(vol) != 1 || vol[0] != "popularity" {
		t.Errorf("VolatilePredicates = %v", vol)
	}
}

func validHuman() *triple.Entity {
	e := triple.NewEntity("kg:E1")
	e.AddFact("type", triple.String("human"))
	e.AddFact("name", triple.String("J. Smith"))
	e.AddFact("birth_date", triple.Time(time.Date(1980, 1, 1, 0, 0, 0, 0, time.UTC)))
	e.AddRelFact("educated_at", "r1", "school", triple.String("UW"))
	e.AddRelFact("educated_at", "r1", "year", triple.Int(2005))
	return e
}

func TestValidateAcceptsConformingEntity(t *testing.T) {
	o := buildSmall(t)
	if v := o.Validate(validHuman()); len(v) != 0 {
		t.Errorf("unexpected violations: %v", v)
	}
}

func TestValidateViolations(t *testing.T) {
	o := buildSmall(t)
	cases := []struct {
		name   string
		mutate func(*triple.Entity)
		substr string
	}{
		{"unknown predicate", func(e *triple.Entity) {
			e.AddFact("ghost_pred", triple.String("x"))
		}, "not in ontology"},
		{"unknown type", func(e *triple.Entity) {
			e.Triples[0].Object = triple.String("alien")
		}, "unknown entity type"},
		{"domain violation", func(e *triple.Entity) {
			e.Triples[0].Object = triple.String("place")
		}, "outside predicate domain"},
		{"range violation", func(e *triple.Entity) {
			e.AddFact("name", triple.Int(5))
		}, "object kind"},
		{"functional violation", func(e *triple.Entity) {
			e.AddFact("name", triple.String("Second Name"))
		}, "functional"},
		{"composite as simple", func(e *triple.Entity) {
			e.AddFact("educated_at", triple.String("UW"))
		}, "simple fact on a composite"},
		{"simple as composite", func(e *triple.Entity) {
			e.AddRelFact("name", "r9", "x", triple.String("v"))
		}, "non-composite predicate"},
		{"unknown rel pred", func(e *triple.Entity) {
			e.AddRelFact("educated_at", "r2", "ghost", triple.String("v"))
		}, "unknown relationship predicate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			e := validHuman()
			c.mutate(e)
			vs := o.Validate(e)
			if len(vs) == 0 {
				t.Fatal("expected violations")
			}
			found := false
			for _, v := range vs {
				if strings.Contains(v.String(), c.substr) {
					found = true
				}
			}
			if !found {
				t.Errorf("violations %v missing %q", vs, c.substr)
			}
		})
	}
}

func TestValidateFunctionalPerLocale(t *testing.T) {
	o := buildSmall(t)
	e := triple.NewEntity("kg:E1")
	e.AddFact("type", triple.String("human"))
	en := triple.New(e.ID, "name", triple.String("London")).WithLocale("en")
	fr := triple.New(e.ID, "name", triple.String("Londres")).WithLocale("fr")
	e.Add(en, fr)
	if v := o.Validate(e); len(v) != 0 {
		t.Errorf("locale-distinct functional facts rejected: %v", v)
	}
}

func TestDefaultOntology(t *testing.T) {
	o := Default()
	for _, typ := range []string{"human", "music_artist", "song", "sports_game", "stock", "city"} {
		if !o.HasType(typ) {
			t.Errorf("default ontology missing type %q", typ)
		}
	}
	if !o.IsA("music_artist", "human") || !o.IsA("song", "creative_work") {
		t.Error("default hierarchy wrong")
	}
	for _, pred := range []string{"name", "educated_at", "performed_by", "home_score", "price"} {
		if _, ok := o.Predicate(pred); !ok {
			t.Errorf("default ontology missing predicate %q", pred)
		}
	}
	vol := o.VolatilePredicates()
	wantVolatile := map[string]bool{"popularity": true, "play_count": true, "home_score": true,
		"away_score": true, "game_status": true, "price": true, "flight_status": true}
	for _, p := range vol {
		if !wantVolatile[p] {
			t.Errorf("unexpected volatile predicate %q", p)
		}
		delete(wantVolatile, p)
	}
	for p := range wantVolatile {
		t.Errorf("predicate %q should be volatile", p)
	}
	// Frozen: additions must fail.
	if err := o.AddType(Type{Name: "late"}); err == nil {
		t.Error("default ontology not frozen")
	}
	// A realistic entity validates.
	e := triple.NewEntity("kg:A1")
	e.AddFact("type", triple.String("music_artist"))
	e.AddFact("name", triple.String("Billie"))
	e.AddFact("genre", triple.String("pop"))
	e.AddFact("popularity", triple.Float(0.97))
	if v := o.Validate(e); len(v) != 0 {
		t.Errorf("artist entity rejected: %v", v)
	}
}
