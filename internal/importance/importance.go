// Package importance computes the entity-importance signal of §3.3. External
// popularity covers head entities only, so applications that rank all
// entities need a structural metric covering torso and tail too. Four graph
// signals combine into one score: in-degree, out-degree, number of identities
// (sources contributing facts), and PageRank over the reference edges. The
// computation is registered as a maintained view over the KG.
package importance

import (
	"math"
	"sort"

	"saga/internal/triple"
)

// Scores holds the structural signals and aggregate for one entity.
type Scores struct {
	InDegree   int
	OutDegree  int
	Identities int
	PageRank   float64
	// Importance is the aggregated score in [0,1].
	Importance float64
}

// Options tunes the computation.
type Options struct {
	// Damping is the PageRank damping factor; default 0.85.
	Damping float64
	// Iterations bounds the power iteration; default 30.
	Iterations int
	// Weights for the aggregate; zero values default to 0.25 each over the
	// normalized signals.
	WInDegree, WOutDegree, WIdentities, WPageRank float64
}

func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.85
	}
	if o.Iterations == 0 {
		o.Iterations = 30
	}
	if o.WInDegree == 0 && o.WOutDegree == 0 && o.WIdentities == 0 && o.WPageRank == 0 {
		o.WInDegree, o.WOutDegree, o.WIdentities, o.WPageRank = 0.25, 0.25, 0.25, 0.25
	}
	return o
}

// Compute evaluates the importance signals over a graph snapshot.
func Compute(g *triple.Graph, opts Options) map[triple.EntityID]Scores {
	opts = opts.withDefaults()
	ids := g.IDs()
	idx := make(map[triple.EntityID]int, len(ids))
	for i, id := range ids {
		idx[id] = i
	}
	n := len(ids)
	if n == 0 {
		return map[triple.EntityID]Scores{}
	}
	out := make([][]int, n) // adjacency over reference edges
	scores := make([]Scores, n)
	g.RangeShared(func(e *triple.Entity) bool {
		i, ok := idx[e.ID]
		if !ok {
			// Inserted after the IDs() listing (the live replica can advance
			// mid-computation); skip rather than corrupt slot 0.
			return true
		}
		scores[i].Identities = len(e.SourceSet())
		for _, ref := range e.References() {
			j, ok := idx[ref]
			if !ok || j == i {
				continue
			}
			out[i] = append(out[i], j)
			scores[i].OutDegree++
			scores[j].InDegree++
		}
		return true
	})

	// PageRank power iteration with uniform teleport; dangling mass is
	// redistributed uniformly so ranks always sum to 1.
	pr := make([]float64, n)
	next := make([]float64, n)
	for i := range pr {
		pr[i] = 1 / float64(n)
	}
	for iter := 0; iter < opts.Iterations; iter++ {
		base := (1 - opts.Damping) / float64(n)
		dangling := 0.0
		for i := range next {
			next[i] = base
		}
		for i, edges := range out {
			if len(edges) == 0 {
				dangling += pr[i]
				continue
			}
			share := opts.Damping * pr[i] / float64(len(edges))
			for _, j := range edges {
				next[j] += share
			}
		}
		spread := opts.Damping * dangling / float64(n)
		for i := range next {
			next[i] += spread
		}
		pr, next = next, pr
	}
	for i := range scores {
		scores[i].PageRank = pr[i]
	}

	// Aggregate: each signal normalized by the maximum after log damping
	// (degree distributions are heavy-tailed; raw degree would let one hub
	// dominate and, per §3.3, degree alone biases toward fact-rich sources).
	var maxIn, maxOut, maxIdent, maxPR float64
	for i := range scores {
		maxIn = math.Max(maxIn, math.Log1p(float64(scores[i].InDegree)))
		maxOut = math.Max(maxOut, math.Log1p(float64(scores[i].OutDegree)))
		maxIdent = math.Max(maxIdent, float64(scores[i].Identities))
		maxPR = math.Max(maxPR, scores[i].PageRank)
	}
	norm := func(v, max float64) float64 {
		if max == 0 {
			return 0
		}
		return v / max
	}
	result := make(map[triple.EntityID]Scores, n)
	for i, id := range ids {
		s := scores[i]
		s.Importance = opts.WInDegree*norm(math.Log1p(float64(s.InDegree)), maxIn) +
			opts.WOutDegree*norm(math.Log1p(float64(s.OutDegree)), maxOut) +
			opts.WIdentities*norm(float64(s.Identities), maxIdent) +
			opts.WPageRank*norm(s.PageRank, maxPR)
		result[id] = s
	}
	return result
}

// Ranked returns entity IDs ordered by decreasing importance (ties by ID).
func Ranked(scores map[triple.EntityID]Scores) []triple.EntityID {
	ids := make([]triple.EntityID, 0, len(scores))
	for id := range scores {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool {
		si, sj := scores[ids[i]].Importance, scores[ids[j]].Importance
		if si != sj {
			return si > sj
		}
		return ids[i] < ids[j]
	})
	return ids
}
