package importance

import (
	"fmt"
	"math"
	"testing"

	"saga/internal/triple"
)

// hubGraph: one hub entity referenced by n spokes, plus an isolated entity.
func hubGraph(n int) *triple.Graph {
	g := triple.NewGraph()
	hub := triple.NewEntity("kg:HUB")
	hub.Add(triple.New("", triple.PredName, triple.String("Hub")).WithSource("s1", 0.9))
	hub.Add(triple.New("", triple.PredName, triple.String("Hub")).WithSource("s2", 0.9).
		MergeProvenance(triple.New("", triple.PredName, triple.String("Hub")).WithSource("s3", 0.9)))
	g.Put(hub)
	for i := 0; i < n; i++ {
		e := triple.NewEntity(triple.EntityID(fmt.Sprintf("kg:S%02d", i)))
		e.Add(triple.New("", "spouse", triple.Ref("kg:HUB")).WithSource("s1", 0.9))
		g.Put(e)
	}
	iso := triple.NewEntity("kg:ISO")
	iso.Add(triple.New("", triple.PredName, triple.String("Alone")).WithSource("s1", 0.9))
	g.Put(iso)
	return g
}

func TestComputeSignals(t *testing.T) {
	g := hubGraph(5)
	scores := Compute(g, Options{})
	hub := scores["kg:HUB"]
	if hub.InDegree != 5 || hub.OutDegree != 0 {
		t.Fatalf("hub degrees = %+v", hub)
	}
	if hub.Identities < 2 {
		t.Fatalf("hub identities = %d", hub.Identities)
	}
	spoke := scores["kg:S00"]
	if spoke.OutDegree != 1 || spoke.InDegree != 0 {
		t.Fatalf("spoke = %+v", spoke)
	}
	if hub.PageRank <= spoke.PageRank {
		t.Fatalf("hub pagerank %f <= spoke %f", hub.PageRank, spoke.PageRank)
	}
	if hub.Importance <= scores["kg:ISO"].Importance {
		t.Fatal("hub not more important than isolated entity")
	}
}

func TestPageRankSumsToOne(t *testing.T) {
	g := hubGraph(7)
	scores := Compute(g, Options{})
	sum := 0.0
	for _, s := range scores {
		sum += s.PageRank
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank mass = %f", sum)
	}
}

func TestImportanceInRange(t *testing.T) {
	scores := Compute(hubGraph(3), Options{})
	for id, s := range scores {
		if s.Importance < 0 || s.Importance > 1 {
			t.Fatalf("importance of %s = %f", id, s.Importance)
		}
	}
}

func TestRanked(t *testing.T) {
	scores := Compute(hubGraph(4), Options{})
	ranked := Ranked(scores)
	if len(ranked) != 6 {
		t.Fatalf("ranked = %d", len(ranked))
	}
	if ranked[0] != "kg:HUB" {
		t.Fatalf("top entity = %s", ranked[0])
	}
	for i := 1; i < len(ranked); i++ {
		if scores[ranked[i-1]].Importance < scores[ranked[i]].Importance {
			t.Fatal("ranking not descending")
		}
	}
}

func TestEmptyGraph(t *testing.T) {
	scores := Compute(triple.NewGraph(), Options{})
	if len(scores) != 0 {
		t.Fatalf("scores = %v", scores)
	}
}

func TestDanglingMassRedistributed(t *testing.T) {
	// A graph that is all dangling nodes must still sum to 1.
	g := triple.NewGraph()
	for i := 0; i < 4; i++ {
		e := triple.NewEntity(triple.EntityID(fmt.Sprintf("kg:D%d", i)))
		e.Add(triple.New("", triple.PredName, triple.String("x")).WithSource("s", 0.9))
		g.Put(e)
	}
	scores := Compute(g, Options{})
	sum := 0.0
	for _, s := range scores {
		sum += s.PageRank
	}
	if math.Abs(sum-1) > 1e-6 {
		t.Fatalf("pagerank mass = %f", sum)
	}
}
