package core

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"sync"
	"testing"
	"time"

	"saga/internal/construct"
	"saga/internal/ingest"
	"saga/internal/triple"
	"saga/internal/workload"
)

// durableState extends backendState with the construction link table, the
// full piece of recovered state the entity payloads cannot reproduce.
type durableState struct {
	backendState
	Links map[triple.EntityID]triple.EntityID
}

func durableStateOf(t *testing.T, p *Platform) durableState {
	t.Helper()
	return durableState{backendState: stateOf(t, p), Links: p.KG.LinksSnapshot()}
}

// durabilityBatches generates a delta stream with inserts, updates, and
// volatile churn, so recovery exercises upserts, link rewrites, and deletes.
func durabilityBatches(rounds int) [][]ingest.Delta {
	out := make([][]ingest.Delta, 0, rounds)
	for r := 0; r < rounds; r++ {
		spec := workload.SourceSpec{
			Name: "src", Count: 24, Offset: r * 4,
			DupRate: 0.05, TypoRate: 0.1, RichFacts: 2, Seed: int64(r + 1),
		}
		if r == 0 {
			out = append(out, []ingest.Delta{spec.Delta()})
			continue
		}
		d := ingest.Delta{Source: "src", Updated: spec.Entities()}
		if r%3 == 2 {
			churn := workload.SourceSpec{Name: "src", Count: 6, Offset: r, Seed: int64(100 + r)}
			d.Volatile = churn.Entities()
		}
		out = append(out, []ingest.Delta{d})
	}
	return out
}

// durabilityConfigs enumerates the recovery matrix: both durable layouts
// (hybrid memory-backend-with-durability-dir, full disk backend), single and
// partitioned construction.
func durabilityConfigs() []struct {
	name    string
	parts   int
	backend string
} {
	return []struct {
		name    string
		parts   int
		backend string
	}{
		{"hybrid", 1, ""},
		{"hybrid-partitioned", 3, ""},
		{"disk", 1, "disk"},
		{"disk-partitioned", 3, "disk"},
	}
}

// durableOptions builds the Options for one matrix cell rooted at dir.
func durableOptions(cfg struct {
	name    string
	parts   int
	backend string
}, dir string) Options {
	opts := Options{Construction: ConstructionOptions{Workers: 2, Partitions: cfg.parts}}
	if cfg.backend == "" {
		opts.Durability.Dir = dir
	} else {
		opts.Storage = StorageOptions{Backend: cfg.backend, DataDir: dir}
	}
	return opts
}

// copyTree snapshots a directory the way a crash preserves it: file by file,
// tolerating files that vanish or shrink mid-copy (a concurrent compaction
// swapping segments). MANIFEST and checkpoint files copy first, so everything
// they reference was durably complete before the snapshot point — the same
// write-ordering argument real recovery relies on. That argument only covers
// the forward direction, though: a compaction swap that completes *during*
// the copy appends staging tombstones for keys the already-copied (old) log
// still references, an old-log/new-staging mix no real crash can produce
// (tombstones are written strictly after the swapped manifest is durable).
// Every swap rewrites the log MANIFEST, so the copy is accepted only if each
// manifest re-reads byte-identical after the last data file is copied.
// Returns false if the tree mutated so the copy should be retried.
func copyTree(t *testing.T, src, dst string) bool {
	t.Helper()
	var files []string
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return nil // vanished mid-walk
		}
		if !info.IsDir() {
			files = append(files, path)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	sort.Slice(files, func(i, j int) bool {
		pi := filepath.Base(files[i]) == "MANIFEST" || filepath.Ext(files[i]) == ".ckpt"
		pj := filepath.Base(files[j]) == "MANIFEST" || filepath.Ext(files[j]) == ".ckpt"
		if pi != pj {
			return pi
		}
		return files[i] < files[j]
	})
	manifests := make(map[string][]byte)
	for _, path := range files {
		rel, err := filepath.Rel(src, path)
		if err != nil {
			t.Fatal(err)
		}
		target := filepath.Join(dst, rel)
		if err := os.MkdirAll(filepath.Dir(target), 0o755); err != nil {
			t.Fatal(err)
		}
		in, err := os.Open(path)
		if err != nil {
			return false // deleted between walk and copy: retry
		}
		out, err := os.Create(target)
		if err != nil {
			in.Close()
			t.Fatal(err)
		}
		_, err = io.Copy(out, in)
		in.Close()
		if cerr := out.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			t.Fatal(err)
		}
		if filepath.Base(path) == "MANIFEST" {
			copied, err := os.ReadFile(target)
			if err != nil {
				t.Fatal(err)
			}
			manifests[path] = copied
		}
	}
	// A swap/rotation landed inside the copy window iff a manifest moved
	// since it was copied; the snapshot may then mix old log with newer
	// staging, so discard it.
	for path, copied := range manifests {
		now, err := os.ReadFile(path)
		if err != nil || !bytes.Equal(now, copied) {
			return false
		}
	}
	return true
}

// snapshotTree copies src into a fresh temp dir, retrying while a concurrent
// compaction churns the tree underneath it.
func snapshotTree(t *testing.T, src string) string {
	t.Helper()
	for attempt := 0; attempt < 10; attempt++ {
		dst, err := os.MkdirTemp(t.TempDir(), "snap-*")
		if err != nil {
			t.Fatal(err)
		}
		if copyTree(t, src, dst) {
			return dst
		}
		os.RemoveAll(dst)
	}
	t.Fatal("snapshotTree: tree would not settle after 10 attempts")
	return ""
}

// reopenState opens a platform over dir with the given config, captures its
// full recovered state, and closes it.
func reopenState(t *testing.T, cfg struct {
	name    string
	parts   int
	backend string
}, dir string) durableState {
	t.Helper()
	p, err := Open(durableOptions(cfg, dir))
	if err != nil {
		t.Fatalf("reopen %s: %v", dir, err)
	}
	st := durableStateOf(t, p)
	if err := p.Close(); err != nil {
		t.Fatalf("close reopened platform: %v", err)
	}
	return st
}

// assertSnapshotConverges is the kill-point invariant: a platform reopened
// from the snapshot with its checkpoints must be byte-identical to one
// reopened from the same snapshot with the checkpoints deleted (pure log
// replay from genesis). Checkpoints are an accelerator, never a fork.
func assertSnapshotConverges(t *testing.T, cfg struct {
	name    string
	parts   int
	backend string
}, snap, label string) {
	t.Helper()
	bare := snapshotTree(t, snap)
	if err := os.RemoveAll(filepath.Join(bare, "checkpoints")); err != nil {
		t.Fatal(err)
	}
	withCkpt := reopenState(t, cfg, snap)
	fromLog := reopenState(t, cfg, bare)
	if !reflect.DeepEqual(withCkpt, fromLog) {
		t.Errorf("%s: checkpoint recovery diverged from full log replay\n  ckpt: lsn=%d entities=%d kg=%d links=%d\n  log:  lsn=%d entities=%d kg=%d links=%d",
			label, withCkpt.LastLSN, len(withCkpt.Entities), len(withCkpt.KG), len(withCkpt.Links),
			fromLog.LastLSN, len(fromLog.Entities), len(fromLog.KG), len(fromLog.Links))
	}
}

// TestRecoveryRoundTrip closes a durable platform cleanly and reopens it:
// the construction KG, link table, graph replica, entity store, text index,
// and log position must come back byte-identical, restored from the latest
// checkpoint plus only the log suffix.
func TestRecoveryRoundTrip(t *testing.T) {
	for _, cfg := range durabilityConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			p, err := Open(durableOptions(cfg, dir))
			if err != nil {
				t.Fatal(err)
			}
			batches := durabilityBatches(6)
			for _, b := range batches[:4] {
				if _, err := p.ConsumeDeltas(b); err != nil {
					t.Fatal(err)
				}
			}
			if _, err := p.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			ckptLSN := p.DurabilityStats().LastCheckpointLSN
			if ckptLSN == 0 {
				t.Fatal("no durable checkpoint saved")
			}
			// Two more batches past the checkpoint: the suffix recovery replays.
			for _, b := range batches[4:] {
				if _, err := p.ConsumeDeltas(b); err != nil {
					t.Fatal(err)
				}
			}
			want := durableStateOf(t, p)
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			re, err := Open(durableOptions(cfg, dir))
			if err != nil {
				t.Fatal(err)
			}
			defer re.Close()
			if got := durableStateOf(t, re); !reflect.DeepEqual(got, want) {
				t.Errorf("recovered state differs from pre-close state:\n  got:  lsn=%d entities=%d kg=%d links=%d\n  want: lsn=%d entities=%d kg=%d links=%d",
					got.LastLSN, len(got.Entities), len(got.KG), len(got.Links),
					want.LastLSN, len(want.Entities), len(want.KG), len(want.Links))
			}
			st := re.DurabilityStats()
			if st.RecoveredLSN != ckptLSN {
				t.Errorf("recovered from lsn %d, want checkpoint %d", st.RecoveredLSN, ckptLSN)
			}
			if st.RecoveredEntities == 0 {
				t.Error("checkpoint restore reported zero entities")
			}
			if st.ReplayedOps == 0 {
				t.Error("suffix replay reported zero ops; batches past the checkpoint were lost")
			}
		})
	}
}

// TestKillPointRecovery snapshots the durable tree at arbitrary points while
// a standing feed, periodic checkpoints, and background compaction are all
// running — the file-level state a kill -9 leaves — and requires every
// snapshot to reopen successfully and converge: recovery via checkpoint
// byte-identical to full log replay, on every backend and partitioning.
func TestKillPointRecovery(t *testing.T) {
	for _, cfg := range durabilityConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := durableOptions(cfg, dir)
			opts.Durability.CheckpointEvery = 2
			opts.Durability.CompactAfter = 4
			p, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			f, err := p.Feed(FeedOptions{})
			if err != nil {
				t.Fatal(err)
			}

			// Submit the stream from one goroutine while snapshots race it:
			// each snapshot lands mid-batch, mid-checkpoint, or mid-compaction,
			// wherever the platform happens to be.
			batches := durabilityBatches(12)
			var wg sync.WaitGroup
			wg.Add(1)
			results := make([]<-chan construct.BatchResult, len(batches))
			go func() {
				defer wg.Done()
				for i, b := range batches {
					results[i] = f.Submit(b)
				}
			}()
			var snaps []string
			for i := 0; i < 3; i++ {
				snaps = append(snaps, snapshotTree(t, dir))
			}
			wg.Wait()
			for i, ch := range results {
				if res := <-ch; res.Err != nil {
					t.Fatalf("batch %d: %v", i, res.Err)
				}
			}
			// One snapshot with the whole stream committed but the platform
			// still open (feed backlog, compactor state all live).
			f.Drain()
			snaps = append(snaps, snapshotTree(t, dir))
			if err := f.Close(); err != nil {
				t.Fatal(err)
			}
			want := durableStateOf(t, p)
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}

			for i, snap := range snaps {
				assertSnapshotConverges(t, cfg, snap, fmt.Sprintf("snapshot %d", i))
			}
			// The cleanly closed tree recovers to exactly the pre-close state.
			if got := reopenState(t, cfg, dir); !reflect.DeepEqual(got, want) {
				t.Error("clean-close recovery differs from pre-close state")
			}
		})
	}
}

// TestFeedBarrierCheckpoint: Checkpoint with an open feed rides the ordered
// publisher as a barrier turn — it must cover every batch submitted before
// it, and a subsequent recovery restores from it with an empty suffix.
func TestFeedBarrierCheckpoint(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{
		Construction: ConstructionOptions{Workers: 2},
		Durability:   DurabilityOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range durabilityBatches(3) {
		f.Submit(b)
	}
	// No awaits: the barrier itself must order behind the submitted batches.
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	st := p.DurabilityStats()
	if st.Checkpoints != 1 {
		t.Fatalf("checkpoints = %d, want 1", st.Checkpoints)
	}
	if got := p.Engine.Log.LastLSN(); st.LastCheckpointLSN != got {
		t.Fatalf("checkpoint lsn = %d, log head = %d; barrier did not cover the submitted batches", st.LastCheckpointLSN, got)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := durableStateOf(t, p)
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{
		Construction: ConstructionOptions{Workers: 2},
		Durability:   DurabilityOptions{Dir: dir},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	rst := re.DurabilityStats()
	if rst.RecoveredLSN != st.LastCheckpointLSN {
		t.Errorf("recovered lsn = %d, want %d", rst.RecoveredLSN, st.LastCheckpointLSN)
	}
	if rst.ReplayedOps != 0 {
		t.Errorf("replayed %d suffix ops, want 0: everything was checkpointed", rst.ReplayedOps)
	}
	if got := durableStateOf(t, re); !reflect.DeepEqual(got, want) {
		t.Error("recovered state differs from pre-close state")
	}
}

// TestPeriodicCheckpointAndCompaction: CheckpointEvery checkpoints ride the
// publisher without any explicit Checkpoint call, CompactAfter triggers the
// background compactor, and the compacted log still recovers byte-identically.
func TestPeriodicCheckpointAndCompaction(t *testing.T) {
	dir := t.TempDir()
	opts := Options{
		Construction: ConstructionOptions{Workers: 2},
		Durability:   DurabilityOptions{Dir: dir, CheckpointEvery: 1, CompactAfter: 1},
	}
	p, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range durabilityBatches(6) {
		// Await each batch so the publisher sees several distinct groups and
		// the periodic counter fires more than once.
		if res := <-f.Submit(b); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	f.Drain()
	st := p.DurabilityStats()
	if st.Checkpoints < 2 {
		t.Fatalf("periodic checkpoints = %d, want >= 2", st.Checkpoints)
	}
	if st.LastCheckpointLSN != p.Engine.Log.LastLSN() {
		t.Fatalf("last checkpoint lsn = %d, log head = %d", st.LastCheckpointLSN, p.Engine.Log.LastLSN())
	}
	if st.CompactionFloor == 0 {
		t.Fatal("no compaction floor after two checkpoints")
	}
	// The compactor runs in the background; wait for it.
	deadline := time.Now().Add(5 * time.Second)
	for p.DurabilityStats().Compactions == 0 {
		if time.Now().After(deadline) {
			t.Fatal("background compaction never ran")
		}
		time.Sleep(5 * time.Millisecond)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	want := durableStateOf(t, p)
	st = p.DurabilityStats()
	if st.CompactionErrors != 0 {
		t.Fatalf("compaction errors = %d: %+v", st.CompactionErrors, st.LastCompaction)
	}
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	cfg := durabilityConfigs()[0] // hybrid
	if got := reopenState(t, cfg, dir); !reflect.DeepEqual(got, want) {
		t.Error("recovery from the compacted log differs from pre-close state")
	}
}

// TestCloseWithInFlightFeedAndCompaction: Close while the feed still has
// unpublished backlog and the background compactor may be mid-run must settle
// everything in order — every submitted batch commits and publishes, no
// deferred exchanges survive, and the reopened platform matches the closed
// one exactly (orphaned state would surface as a diff or a reopen error).
func TestCloseWithInFlightFeedAndCompaction(t *testing.T) {
	for _, cfg := range durabilityConfigs() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			dir := t.TempDir()
			opts := durableOptions(cfg, dir)
			opts.Durability.CheckpointEvery = 1
			opts.Durability.CompactAfter = 1
			p, err := Open(opts)
			if err != nil {
				t.Fatal(err)
			}
			f, err := p.Feed(FeedOptions{})
			if err != nil {
				t.Fatal(err)
			}
			batches := durabilityBatches(8)
			results := make([]<-chan construct.BatchResult, len(batches))
			for i, b := range batches {
				results[i] = f.Submit(b)
			}
			// Close immediately: the feed backlog is (very likely) still in
			// flight and checkpoints are queueing compactions behind it.
			if err := p.Close(); err != nil {
				t.Fatal(err)
			}
			// Every batch submitted before Close must have fully committed:
			// Close drains, it never drops.
			for i, ch := range results {
				if res := <-ch; res.Err != nil {
					t.Fatalf("batch %d failed across Close: %v", i, res.Err)
				}
			}
			want := durableState{
				backendState: backendState{
					KG:      p.KG.Graph.Triples(),
					Replica: p.GraphReplica.Triples(),
					LastLSN: p.Engine.Log.LastLSN(),
				},
				Links: p.KG.LinksSnapshot(),
			}
			got := reopenState(t, cfg, dir)
			got.Entities, got.Search = nil, nil // closed stores can't be dumped for want
			if !reflect.DeepEqual(got, want) {
				t.Errorf("reopen after in-flight Close differs:\n  got:  lsn=%d kg=%d replica=%d links=%d\n  want: lsn=%d kg=%d replica=%d links=%d",
					got.LastLSN, len(got.KG), len(got.Replica), len(got.Links),
					want.LastLSN, len(want.KG), len(want.Replica), len(want.Links))
			}
		})
	}
}
