package core

// Platform-level coverage of the standing ingestion feed and the publish
// error paths: the feed's async publisher must leave every store exactly
// where serial ConsumeDeltas calls would, serving-side entry points must
// drain the feed before reading, and an Engine.Publish failure must heal —
// never leaving RefreshServing or the agents permanently diverged from the
// KG.

import (
	"errors"
	"fmt"
	"reflect"
	"testing"

	"saga/internal/construct"
	"saga/internal/ingest"
	"saga/internal/views"
	"saga/internal/workload"
)

// platformBatches builds `rounds` batches over `sources` type-disjoint
// sources: round 0 adds, later rounds whole-source updates over a shifted
// window (updates mixed with fresh adds).
func platformBatches(rounds, sources, count int) [][]ingest.Delta {
	out := make([][]ingest.Delta, rounds)
	for r := range out {
		deltas := make([]ingest.Delta, sources)
		for s := range deltas {
			spec := workload.SourceSpec{
				Name:   fmt.Sprintf("src%02d", s),
				Type:   fmt.Sprintf("kind%02d", s),
				Offset: r * 4, Count: count,
				DupRate: 0.1, TypoRate: 0.1, RichFacts: 2,
				Seed: int64(r*100 + s + 1),
			}
			if r == 0 {
				deltas[s] = spec.Delta()
			} else {
				deltas[s] = ingest.Delta{Source: spec.Name, Updated: spec.Entities()}
			}
		}
		out[r] = deltas
	}
	return out
}

// TestPlatformFeedMatchesSerialConsumeDeltas: the feed must leave the KG,
// the operation log, and every agent-derived store byte-identical to serial
// ConsumeDeltas calls over the same batches.
func TestPlatformFeedMatchesSerialConsumeDeltas(t *testing.T) {
	batches := platformBatches(4, 3, 10)

	serial := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 3}})
	for _, b := range batches {
		if _, err := serial.ConsumeDeltas(b); err != nil {
			t.Fatal(err)
		}
	}

	fed := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 3}})
	f, err := fed.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	results := make([]<-chan construct.BatchResult, 0, len(batches))
	for _, b := range batches {
		results = append(results, f.Submit(b))
	}
	for i, ch := range results {
		if res := <-ch; res.Err != nil {
			t.Fatalf("batch %d: %v", i, res.Err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	if got, want := fed.KG.Graph.Triples(), serial.KG.Graph.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("feed KG diverged from serial ConsumeDeltas")
	}
	if got, want := fed.GraphReplica.Triples(), serial.GraphReplica.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("feed graph replica diverged from serial ConsumeDeltas")
	}
	if got, want := fed.Engine.Log.LastLSN(), serial.Engine.Log.LastLSN(); got != want {
		t.Fatalf("log LSN = %d, serial %d", got, want)
	}
	// Every agent fully caught up before Close returned.
	for _, name := range fed.Engine.Agents() {
		if behind := fed.Engine.Freshness(name); behind != 0 {
			t.Fatalf("agent %s is %d ops behind after Close", name, behind)
		}
	}
}

// TestFeedDrainBeforeServing: RefreshServing and Checkpoint must observe
// every batch submitted before them, without the caller waiting on results.
func TestFeedDrainBeforeServing(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2}})
	seen := 0
	if err := p.ViewCatalog.Register(views.Definition{
		Name:   "count-view",
		Create: func(ctx *views.Context) error { seen = ctx.Graph.Len(); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, b := range platformBatches(3, 2, 8) {
		f.Submit(b) // results intentionally ignored: drain must cover them
	}
	p.RefreshServing()
	if got, want := p.Live.Len(), p.KG.Graph.Len(); got < want {
		t.Fatalf("live store has %d of %d KG entities after RefreshServing", got, want)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got, want := seen, p.KG.Graph.Len(); got != want {
		t.Fatalf("checkpoint view saw %d of %d entities", got, want)
	}
	// A second feed while this one is open must be refused.
	if _, err := p.Feed(FeedOptions{}); err == nil {
		t.Fatal("second feed opened while one is active")
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	// After Close a new feed may open.
	f2, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestConsumeDeltasPublishFailureHeals: an Engine.Publish failure for one
// delta must not stop the batch's other deltas from reaching the stores, and
// the failed delta's effects must re-sync from the KG at the next publish
// point — RefreshServing and the agents never stay diverged.
func TestConsumeDeltasPublishFailureHeals(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2}})
	failErr := errors.New("injected publish failure")
	p.publishHook = func(source string) error {
		if source == "src01" {
			return failErr
		}
		return nil
	}
	if _, err := p.ConsumeDeltas(platformBatches(1, 3, 8)[0]); !errors.Is(err, failErr) {
		t.Fatalf("consume error = %v", err)
	}
	if p.KG.Graph.Len() == 0 {
		t.Fatal("KG empty — commit should precede publish")
	}
	// The other deltas' publishes continued past the failure and agents were
	// caught up on them.
	if p.GraphReplica.Len() == 0 {
		t.Fatal("replica empty: publish loop stopped at the first failure")
	}
	if p.GraphReplica.Len() >= p.KG.Graph.Len() {
		t.Fatalf("replica unexpectedly complete: %d of %d", p.GraphReplica.Len(), p.KG.Graph.Len())
	}
	// Heal: the engine recovers, the next serving refresh re-syncs.
	p.publishHook = nil
	p.RefreshServing()
	if got, want := p.GraphReplica.Triples(), p.KG.Graph.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("replica still diverged from the KG after the engine recovered")
	}
	if got, want := p.Live.Len(), p.KG.Graph.Len(); got < want {
		t.Fatalf("live store has %d of %d entities", got, want)
	}
}

// TestFeedPublishFailureHealsLaterBatchesCommit: a publish failure inside
// the feed's async publisher fails that batch's result only; later batches
// commit and publish, and the failed batch's effects heal at the next
// publish point.
func TestFeedPublishFailureHealsLaterBatchesCommit(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2}})
	failErr := errors.New("injected publish failure")
	p.publishHook = func(source string) error {
		if source == "src01" {
			return failErr
		}
		return nil
	}
	batches := platformBatches(3, 2, 8)
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	var results []<-chan construct.BatchResult
	for _, b := range batches {
		results = append(results, f.Submit(b))
	}
	failed := 0
	for _, ch := range results {
		if res := <-ch; res.Err != nil {
			if !errors.Is(res.Err, failErr) {
				t.Fatalf("unexpected batch error: %v", res.Err)
			}
			failed++
		}
	}
	if failed != len(batches) {
		// src01 appears in every batch, so every batch's publish reports it.
		t.Fatalf("failed batches = %d of %d", failed, len(batches))
	}
	if err := f.Close(); !errors.Is(err, failErr) {
		t.Fatalf("Close sticky error = %v", err)
	}
	// src00's ops all published; src01's are pending.
	if p.GraphReplica.Len() == 0 || p.GraphReplica.Len() >= p.KG.Graph.Len() {
		t.Fatalf("replica %d of %d entities", p.GraphReplica.Len(), p.KG.Graph.Len())
	}
	p.publishHook = nil
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.GraphReplica.Triples(), p.KG.Graph.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("replica still diverged after the engine recovered")
	}
}

// TestSyncConsumeRoutesThroughOpenFeed: with a feed open, the synchronous
// consume paths submit to it instead of publishing directly, so the feed's
// ordered publisher stays the engine's single producer — and the sync call
// still returns fully published, caught-up state.
func TestSyncConsumeRoutesThroughOpenFeed(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2}})
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	batches := platformBatches(2, 2, 8)
	f.Submit(batches[0])
	stats, err := p.ConsumeDeltas(batches[1])
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != len(batches[1]) || stats[0].Source != batches[1][0].Source {
		t.Fatalf("routed stats = %+v", stats)
	}
	// The sync call resolved after its batch (and everything before it)
	// committed and published.
	for _, name := range p.Engine.Agents() {
		if behind := p.Engine.Freshness(name); behind != 0 {
			t.Fatalf("agent %s is %d ops behind after routed ConsumeDeltas", name, behind)
		}
	}
	single, err := p.ConsumeDelta(batches[1][0])
	if err != nil {
		t.Fatal(err)
	}
	if single.Source != batches[1][0].Source {
		t.Fatalf("routed single-delta stats = %+v", single)
	}
	fs := f.Stats()
	if fs.Submitted != 3 {
		t.Fatalf("feed saw %d batches, want 3 (sync consumes must route through it)", fs.Submitted)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got, want := p.GraphReplica.Triples(), p.KG.Graph.Triples(); !reflect.DeepEqual(got, want) {
		t.Fatal("replica diverged from KG")
	}
}

// TestPlatformFeedEmptyBatch: the platform feed fast-paths empty batches.
func TestPlatformFeedEmptyBatch(t *testing.T) {
	p := newTestPlatform(t, Options{})
	f, err := p.Feed(FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if res := <-f.Submit(nil); res.Err != nil {
		t.Fatal(res.Err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if got := p.Engine.Log.LastLSN(); got != 0 {
		t.Fatalf("empty batch published %d ops", got)
	}
}
