package core

import (
	"flag"
	"reflect"
	"sort"
	"testing"

	"saga/internal/ingest"
	"saga/internal/triple"
	"saga/internal/workload"
)

// testBackend selects the storage backend the core test suite runs against:
//
//	go test ./internal/core -backend=disk
//
// Every test built on newTestPlatform then exercises the full platform over
// that backend; CI runs the suite once per backend, which is the byte-level
// half of the cross-backend identity guarantee (the other half is
// TestBackendsByteIdentical, which compares the backends directly).
var testBackend = flag.String("backend", "", "storage backend for platform tests (empty = memory)")

// newTestPlatform builds a platform on the -backend backend, rooting durable
// backends in a per-test temp directory, and closes it when the test ends.
func newTestPlatform(t testing.TB, opts Options) *Platform {
	t.Helper()
	if *testBackend != "" {
		opts.Storage.Backend = *testBackend
		opts.Storage.DataDir = t.TempDir()
	}
	p, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		if err := p.Close(); err != nil {
			t.Errorf("close platform: %v", err)
		}
	})
	return p
}

// backendState flattens everything a backend stores into comparable form.
type backendState struct {
	KG       []triple.Triple
	Replica  []triple.Triple
	Entities []triple.EntityID
	Search   []string
	LastLSN  uint64
}

func stateOf(t *testing.T, p *Platform) backendState {
	t.Helper()
	st := backendState{
		KG:      p.KG.Graph.Triples(),
		Replica: p.GraphReplica.Triples(),
		LastLSN: p.Engine.Log.LastLSN(),
	}
	if err := p.EntityStore.Range(func(e *triple.Entity) bool {
		st.Entities = append(st.Entities, e.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(st.Entities, func(i, j int) bool { return st.Entities[i] < st.Entities[j] })
	for _, h := range p.TextIndex.Search("name", 20) {
		st.Search = append(st.Search, h.ID)
	}
	return st
}

// TestBackendsByteIdentical feeds the same delta stream through a platform
// per registered byte-level configuration and requires the final KG, graph
// replica, entity store contents, text search results, and log position to
// match exactly: a storage backend may change where bytes live, never what
// they are.
func TestBackendsByteIdentical(t *testing.T) {
	batches := make([][]ingest.Delta, 0, 4)
	for r := 0; r < 3; r++ {
		spec := workload.SourceSpec{
			Name: "src", Count: 20, Offset: r * 5,
			DupRate: 0.05, TypoRate: 0.1, RichFacts: 3, Seed: int64(r + 1),
		}
		if r == 0 {
			batches = append(batches, []ingest.Delta{spec.Delta()})
		} else {
			batches = append(batches, []ingest.Delta{{Source: "src", Updated: spec.Entities()}})
		}
	}
	churn := workload.SourceSpec{Name: "src", Count: 10, Seed: 42, RichFacts: 1}
	batches = append(batches, []ingest.Delta{{Source: "src", Volatile: churn.Entities()}})

	run := func(backend string) backendState {
		opts := Options{Construction: ConstructionOptions{Workers: 2}}
		if backend != "" {
			opts.Storage.Backend = backend
			opts.Storage.DataDir = t.TempDir()
		}
		p, err := Open(opts)
		if err != nil {
			t.Fatal(err)
		}
		defer p.Close()
		for _, b := range batches {
			if _, err := p.ConsumeDeltas(b); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := p.Checkpoint(); err != nil {
			t.Fatal(err)
		}
		return stateOf(t, p)
	}

	mem := run("")
	disk := run("disk")
	if !reflect.DeepEqual(mem, disk) {
		t.Errorf("memory and disk backends diverged:\n  memory: lsn=%d entities=%d kg=%d replica=%d search=%v\n  disk:   lsn=%d entities=%d kg=%d replica=%d search=%v",
			mem.LastLSN, len(mem.Entities), len(mem.KG), len(mem.Replica), mem.Search,
			disk.LastLSN, len(disk.Entities), len(disk.KG), len(disk.Replica), disk.Search)
	}
}

// TestDiskBackendRecovery closes a disk-backed platform and reopens its data
// directory: the oplog, staging store, and entity store must all come back,
// and replaying the log must rebuild the same replica.
func TestDiskBackendRecovery(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{Storage: StorageOptions{Backend: "disk", DataDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 8, Seed: 3, RichFacts: 2}.Delta()); err != nil {
		t.Fatal(err)
	}
	lsn := p.Engine.Log.LastLSN()
	want := p.GraphReplica.Triples()
	wantEntities := p.EntityStore.Len()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := Open(Options{Storage: StorageOptions{Backend: "disk", DataDir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Engine.Log.LastLSN(); got != lsn {
		t.Fatalf("recovered lsn = %d, want %d", got, lsn)
	}
	if got := re.EntityStore.Len(); got != wantEntities {
		t.Fatalf("recovered entity store has %d entities, want %d", got, wantEntities)
	}
	if err := re.Engine.CatchUp(); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(re.GraphReplica.Triples(), want) {
		t.Fatal("replica after recovery differs from pre-close replica")
	}
}
