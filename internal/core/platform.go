// Package core wires Saga's subsystems into the end-to-end platform of
// Figure 1: source ingestion feeds the batch construction pipeline, the
// construction pipeline is the sole producer into the Graph Engine's
// operation log, orchestration agents derive every store's view of the KG,
// views materialize on checkpoints, the live graph serves a view of the
// stable KG unioned with streaming sources, and the ML services (NERD,
// embeddings, importance) are built over the same engine.
package core

import (
	"errors"
	"fmt"
	"io"
	"path/filepath"
	"sort"
	"sync"

	"saga/internal/construct"
	"saga/internal/graphengine"
	"saga/internal/importance"
	"saga/internal/ingest"
	"saga/internal/live"
	"saga/internal/live/kgq"
	"saga/internal/nerd"
	"saga/internal/ontology"
	"saga/internal/oplog"
	"saga/internal/storage"
	"saga/internal/storage/disk"
	"saga/internal/store/entitystore"
	"saga/internal/store/textindex"
	"saga/internal/triple"
	"saga/internal/views"
)

// StorageOptions selects the storage backend for the platform's serving
// stores (entity KV, text postings, record log, staging blobs).
type StorageOptions struct {
	// Backend names the storage backend ("memory", "disk", or any backend
	// registered with the storage package); empty means memory. The memory
	// backend keeps volatile stores; durability for the log, staging store,
	// and checkpoints can still be layered on via DurabilityOptions.Dir.
	Backend string
	// DataDir roots a durable backend's files. Required for non-memory
	// backends; ignored by memory.
	DataDir string
}

// ConstructionOptions tunes the KG construction pipeline.
type ConstructionOptions struct {
	// LinkParams tunes the construction linking stage.
	LinkParams construct.LinkParams
	// Workers bounds the construction pipeline's intra-delta parallelism
	// (pair scoring, component clustering, object resolution). 0 means
	// GOMAXPROCS; 1 forces the sequential reference path. The constructed KG
	// is identical for every value — workers only change wall-clock time.
	Workers int
	// FullScanLinking disables the incremental block index and links every
	// delta by scanning the full per-type KG view, the pre-index reference
	// path. The default (false) maintains a persistent block-key → entity-ID
	// index alongside the KG so per-delta linking cost tracks the delta, not
	// the accumulated graph. Both modes construct byte-identical KGs.
	FullScanLinking bool
	// PerEntityFusion disables batched per-target fusion in the commit phase
	// and fuses payload entities one graph round-trip at a time, the
	// pre-batching reference path kept as the ablation baseline.
	PerEntityFusion bool
	// Partitions shards construction across N concurrently fusing pipeline
	// partitions over one shared KG (entity types hash to an owner
	// partition; cross-partition volatile traffic exchanges at batch
	// boundaries — see docs/INVARIANTS.md#cross-partition-linking). 0 or 1
	// keeps the single pipeline; every value constructs a byte-identical KG.
	Partitions int
	// ExchangeInterval is the number of published feed batches between
	// cross-partition exchanges (backlog flush + deferred publish) in
	// partitioned mode; 0 means DefaultExchangeInterval. Entities with
	// deferred volatile state publish at the next exchange (and always at
	// drain), so the interval bounds serving staleness, never final state.
	ExchangeInterval int
}

// DurabilityOptions configures crash recovery: where durable log/checkpoint
// state lives when the store backend itself is volatile, and the cadence of
// checkpoints and log compaction.
type DurabilityOptions struct {
	// Dir, with the memory backend, roots a durable operation log (segmented,
	// under Dir/oplog), staging store (Dir/staging), and checkpoint files
	// (Dir/checkpoints) while the serving stores stay volatile — the hybrid
	// deployment where only replayable state survives a restart. Durable
	// backends keep all of these under Storage.DataDir and ignore Dir.
	Dir string
	// CheckpointEvery takes a durable checkpoint every N published feed
	// batches, on the feed's ordered publisher (so a checkpoint is one more
	// publish unit and never stalls the commit loop). 0 disables periodic
	// checkpoints; explicit Checkpoint calls still work.
	CheckpointEvery int
	// CompactAfter triggers background log compaction once the prefix at or
	// below the compaction floor (the penultimate checkpoint watermark)
	// holds at least this many ops. 0 disables automatic compaction;
	// explicit Compact calls still work.
	CompactAfter int
}

// ServingOptions configures the live serving tier.
type ServingOptions struct {
	// LiveReplicas sets the live serving replica count (§4): writes
	// replicate to every replica, reads route across them with health,
	// version, and load awareness. 0 or 1 means a single replica.
	LiveReplicas int
}

// Options configures a platform, grouped by subsystem.
type Options struct {
	// Ontology defaults to ontology.Default().
	Ontology *ontology.Ontology
	// Storage selects the store backend.
	Storage StorageOptions
	// Construction tunes the construction pipeline.
	Construction ConstructionOptions
	// Feed sets the default queue depths for feeds opened with Platform.Feed
	// (per-call FeedOptions override them).
	Feed FeedOptions
	// Durability configures crash recovery, checkpoints, and log compaction.
	Durability DurabilityOptions
	// Serving configures the live serving tier.
	Serving ServingOptions
}

// DefaultExchangeInterval is the default partitioned-mode exchange cadence,
// in feed batches.
const DefaultExchangeInterval = 8

// withDefaults resolves zero values to their documented defaults.
func (o Options) withDefaults() Options {
	if o.Ontology == nil {
		o.Ontology = ontology.Default()
	}
	if o.Construction.ExchangeInterval <= 0 {
		o.Construction.ExchangeInterval = DefaultExchangeInterval
	}
	if o.Feed.Queue <= 0 {
		o.Feed.Queue = construct.DefaultFeedQueue
	}
	if o.Feed.PublishQueue <= 0 {
		o.Feed.PublishQueue = construct.DefaultFeedPublishQueue
	}
	return o
}

// Platform is the assembled knowledge platform.
type Platform struct {
	Ont *ontology.Ontology
	KG  *construct.KG
	// Pipeline is the single construction pipeline; nil in partitioned mode.
	Pipeline *construct.Pipeline
	// Partitioned is the partitioned construction coordinator; nil in
	// single-pipeline mode. Exactly one of Pipeline/Partitioned is non-nil.
	Partitioned *construct.PartitionedPipeline

	Engine       *graphengine.Engine
	EntityStore  *entitystore.Store
	TextIndex    *textindex.Index
	GraphReplica *triple.Graph

	ViewCatalog *views.Catalog
	ViewManager *views.Manager

	// Live is the primary serving replica (Replicas.Replica(0)); direct
	// reads against it are always valid. Writes go through Replicas so
	// every replica stays in sync.
	Live *live.Store
	// Replicas is the live serving replica set; serving tiers route reads
	// across it (live.ReplicaSet.RouteAcquire).
	Replicas        *live.ReplicaSet
	LiveConstructor *live.Constructor
	LiveEngine      *kgq.Engine
	Intents         *live.IntentHandler
	Curation        *live.Queue

	// NERD is built on demand by BuildNERD.
	NERD *nerd.NERD

	// Checkpoints is the durable checkpoint store; nil when the platform has
	// no durable checkpoint target (volatile backend without Durability.Dir).
	Checkpoints storage.Checkpointer

	snapshots map[string]ingest.Snapshot

	// feedMu guards the standing feed slot; at most one feed is open at a
	// time so the pipeline's write path stays single-producer.
	feedMu sync.Mutex
	feed   *construct.Feed

	// pendingMu guards publishes that failed against the engine; they are
	// retried — re-synced against the KG's current state — at the next
	// publish point so a transient Engine.Publish error cannot leave the
	// serving stores permanently diverged from the KG.
	pendingMu sync.Mutex
	pending   []pendingPublish

	// publishHook, when set (tests only), runs before every engine publish
	// and can inject failures to exercise the retry path.
	publishHook func(source string) error

	// Partitioned-mode publish state (guarded by pubMu): the carry set maps
	// each entity with unpublished committed effects to the source that last
	// touched it. The publisher publishes carried entities whose state is
	// final (no deferred volatile ops) immediately and holds the rest until
	// the next exchange, when the backlog flushes and everything carried
	// publishes at once; drain forces a final exchange.
	pubMu         sync.Mutex
	pubCarry      map[triple.EntityID]string // entity -> last-writing source
	linkCarry     map[triple.EntityID]bool   // link-table keys with unpublished changes
	pubBatches    int                        // published batches since the last exchange
	exchangeEvery int

	// feedDefaults are the Options.Feed queue depths, applied when a Feed
	// call leaves its own FeedOptions zero.
	feedDefaults FeedOptions

	// linkReplica is the log-derived link table: a FuncAgent replays every
	// op's Links/Unlinks into it, so after a CatchUp it is exactly the link
	// state at the agents' LSN — the consistent capture checkpoints embed.
	linkMu      sync.Mutex
	linkReplica map[triple.EntityID]triple.EntityID

	// Durability state (guarded by durMu). prevCkptLSN is the penultimate
	// durable checkpoint watermark — the compaction floor: the log prefix at
	// or below it may be rewritten, because every retained checkpoint is at
	// least that fresh and recovery never replays below its checkpoint.
	durMu        sync.Mutex
	durStats     DurabilityStats
	prevCkptLSN  uint64
	ckptEvery    int
	compactAfter int
	ckptBatches  int // published feed batches since the last periodic checkpoint

	// Background compactor. compactRunMu serializes compaction runs (the
	// goroutine and explicit Compact calls); compactMu guards the trigger
	// channel against send-on-closed during shutdown.
	compactRunMu   sync.Mutex
	compactMu      sync.Mutex
	compactTrig    chan uint64
	compactStopped bool
	compactDone    chan struct{}
}

// pendingPublish records a failed publish: the source, the KG entities whose
// store state may be stale, and the link-table keys whose log record was
// lost. A retry publishes the entities' *current* KG state (upsert if
// present, delete if gone) and re-resolves each link key through KG.Lookup,
// which is convergent no matter how many later commits touched them in
// between.
type pendingPublish struct {
	source   string
	ids      []triple.EntityID
	linkSrcs []triple.EntityID
}

// Open assembles a platform and recovers its state: with durable storage it
// restores the construction KG and every serving store from the latest
// checkpoint and replays only the operation-log suffix past the checkpoint's
// watermark (agent-parallel), so cold-start time tracks the suffix length,
// not the log's age. A platform with no durable state opens empty. Close the
// platform when done; recovery is Open's job alone — nothing else replays
// the log implicitly.
func Open(opts Options) (*Platform, error) {
	opts = opts.withDefaults()
	var (
		log     *oplog.Log
		staging graphengine.ObjectStore
		estore  *entitystore.Store
		tindex  *textindex.Index
		ckpts   storage.Checkpointer
		err     error
	)
	if opts.Storage.Backend == "" || opts.Storage.Backend == storage.DefaultBackend {
		// The hybrid configuration: volatile in-memory stores, with the
		// oplog, staging store, and checkpoints made durable under
		// Durability.Dir when set. The stores rebuild from checkpoint + log
		// suffix at Open.
		if dir := opts.Durability.Dir; dir != "" {
			rec, err := disk.OpenRecordLog(filepath.Join(dir, "oplog"), 0)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			log, err = oplog.OpenStore(rec)
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			staging, err = graphengine.NewDirObjectStore(filepath.Join(dir, "staging"))
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
			ckpts, err = disk.OpenCheckpoints(filepath.Join(dir, "checkpoints"))
			if err != nil {
				return nil, fmt.Errorf("core: %w", err)
			}
		} else {
			log = oplog.NewVolatile()
			staging = graphengine.NewObjectStore()
		}
		estore = entitystore.New()
		tindex = textindex.New()
	} else {
		if opts.Storage.DataDir == "" {
			return nil, fmt.Errorf("core: backend %q needs Storage.DataDir", opts.Storage.Backend)
		}
		h, err := storage.Resolve(opts.Storage.Backend, storage.Options{Dir: opts.Storage.DataDir, Partitions: opts.Construction.Partitions})
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		rec, err := h.RecordLog()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		log, err = oplog.OpenStore(rec)
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		staging, err = h.BlobStore()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		kv, err := h.EntityKV()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		estore = entitystore.NewWith(kv)
		postings, err := h.Postings()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
		tindex = textindex.NewWith(postings)
		ckpts, err = h.Checkpoints()
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	p := &Platform{
		Ont:          opts.Ontology,
		KG:           construct.NewKG(),
		Engine:       graphengine.NewWithStaging(log, staging),
		EntityStore:  estore,
		TextIndex:    tindex,
		GraphReplica: triple.NewGraph(),
		ViewCatalog:  views.NewCatalog(),
		Curation:     live.NewQueue(),
		Checkpoints:  ckpts,
		snapshots:    make(map[string]ingest.Snapshot),
	}
	p.linkReplica = make(map[triple.EntityID]triple.EntityID)
	p.Engine.RegisterAgent(graphengine.EntityStoreAgent{Store: p.EntityStore})
	p.Engine.RegisterAgent(graphengine.TextIndexAgent{Index: p.TextIndex})
	p.Engine.RegisterAgent(graphengine.GraphAgent{Graph: p.GraphReplica})
	p.Engine.RegisterAgent(graphengine.FuncAgent{AgentName: "link-table", Fn: p.applyLinkOp})

	// Recover before building the pipelines: the block index eagerly indexes
	// the KG at pipeline construction, so the KG must hold its restored state
	// first.
	if err = p.recover(); err != nil {
		return nil, err
	}

	if opts.Construction.Partitions > 1 {
		pp := construct.NewPartitionedPipeline(p.KG, opts.Ontology, opts.Construction.Partitions)
		pp.Link = opts.Construction.LinkParams
		pp.Workers = opts.Construction.Workers
		pp.PerEntityFusion = opts.Construction.PerEntityFusion
		if !opts.Construction.FullScanLinking {
			pp.EnableBlockIndex()
		}
		p.Partitioned = pp
	} else {
		p.Pipeline = construct.NewPipeline(p.KG, opts.Ontology)
		p.Pipeline.Link = opts.Construction.LinkParams
		p.Pipeline.Workers = opts.Construction.Workers
		p.Pipeline.PerEntityFusion = opts.Construction.PerEntityFusion
		if !opts.Construction.FullScanLinking {
			p.Pipeline.EnableBlockIndex()
		}
	}
	p.exchangeEvery = opts.Construction.ExchangeInterval
	p.pubCarry = make(map[triple.EntityID]string)
	p.linkCarry = make(map[triple.EntityID]bool)
	p.feedDefaults = opts.Feed
	p.ckptEvery = opts.Durability.CheckpointEvery
	p.compactAfter = opts.Durability.CompactAfter
	p.ViewManager = views.NewManager(p.ViewCatalog)
	replicas := opts.Serving.LiveReplicas
	if replicas < 1 {
		replicas = 1
	}
	p.Replicas = live.NewReplicaSet(replicas)
	p.Live = p.Replicas.Replica(0)
	p.LiveConstructor = &live.Constructor{Store: p.Replicas}
	p.LiveEngine = kgq.NewEngine(p.Live)
	p.Intents = live.NewIntentHandler(p.Live, nil)

	p.compactTrig = make(chan uint64, 1)
	p.compactDone = make(chan struct{})
	go p.compactorLoop() //saga:longlived stopped by Close before the stores shut
	return p, nil
}

// IngestSource runs a source's ingestion pipeline over a published data
// version (import → transform → align → delta) and consumes the delta into
// the KG. The per-source snapshot is kept so the next run diffs against it.
func (p *Platform) IngestSource(src *ingest.Source, data io.Reader) (construct.SourceStats, error) {
	res, err := src.Run(data, p.snapshots[src.Name], p.Ont)
	if err != nil {
		return construct.SourceStats{}, err
	}
	p.snapshots[src.Name] = res.Snapshot
	return p.ConsumeDelta(res.Delta)
}

// ConsumeDelta runs one delta through construction and publishes the touched
// entities to the Graph Engine, then replays agents so all stores converge.
// With a standing feed open, the delta is routed through the feed instead —
// submitted as a single-delta batch and awaited — so the feed's commit loop
// and ordered publisher remain the engine's only producer and publishes can
// never reorder against concurrently submitted batches.
func (p *Platform) ConsumeDelta(d ingest.Delta) (construct.SourceStats, error) {
	if f := p.openFeed(); f != nil {
		res := <-f.Submit([]ingest.Delta{d})
		if !errors.Is(res.Err, construct.ErrFeedClosed) {
			if len(res.Stats) == 1 {
				return res.Stats[0], res.Err
			}
			return construct.SourceStats{Source: d.Source}, res.Err
		}
		// Closed between openFeed and Submit: nothing consumed. Wait for
		// the closing feed's backlog to finish publishing so the
		// synchronous path below never runs as a second concurrent
		// producer, then fall through.
		f.Drain()
	}
	var (
		stats construct.SourceStats
		err   error
	)
	if p.Partitioned != nil {
		// Synchronous partitioned consume: commit, then exchange immediately
		// (flush the deferred backlog) so the publish below ships final
		// state — the sync path has no later exchange point to defer to.
		var all []construct.SourceStats
		all, err = p.Partitioned.Consume([]ingest.Delta{d})
		p.Partitioned.FlushVolatile()
		if len(all) == 1 {
			stats = all[0]
		} else {
			stats = construct.SourceStats{Source: d.Source}
		}
	} else {
		stats, err = p.Pipeline.ConsumeDelta(d)
	}
	if err != nil {
		return stats, err
	}
	pubErr := p.flushPending()
	if err := p.publishStats(stats); err != nil && pubErr == nil {
		pubErr = err
	}
	if err := p.Engine.CatchUp(); err != nil && pubErr == nil {
		pubErr = err
	}
	return stats, pubErr
}

// ConsumeDeltas consumes several sources through the pipelined commit path
// (commit i overlaps the compute of deltas j > i), then publishes. Every
// delta of the batch links against the KG state at batch start (that is what
// makes the batch deterministic), so two sources in one batch that describe
// the same real-world entity each mint their own KG entity — and resolution
// never merges two existing KG entities afterwards (≤1 graph entity per
// cluster). Batch only independent sources; consume related sources in
// separate calls so the later one links against the earlier one's output.
// For a continuously arriving stream of batches, prefer Feed: it overlaps
// this call's publish tail with the next batch's construction. With a
// standing feed open, the batch is routed through it (submitted and awaited)
// so the feed stays the engine's only producer.
//
// Error contract: a *construct.BatchError means the committed prefix (see
// that type) stayed applied — its effects are still published so the stores
// track the KG. A publish error does not lose data either: the failed ops are
// queued and re-synced from the KG at the next publish point, and agents are
// always caught up on whatever reached the log before this call returns.
func (p *Platform) ConsumeDeltas(deltas []ingest.Delta) ([]construct.SourceStats, error) {
	if f := p.openFeed(); f != nil {
		res := <-f.Submit(deltas)
		if !errors.Is(res.Err, construct.ErrFeedClosed) {
			return res.Stats, res.Err
		}
		// Closed between openFeed and Submit: nothing consumed. Wait for
		// the closing feed's backlog to finish publishing so the
		// synchronous path below never runs as a second concurrent
		// producer, then fall through.
		f.Drain()
	}
	var (
		all []construct.SourceStats
		err error
	)
	if p.Partitioned != nil {
		all, err = p.Partitioned.Consume(deltas)
		// Exchange before publishing: the committed prefix's deferred
		// volatile state must be in the graph when publishStats captures it.
		p.Partitioned.FlushVolatile()
	} else {
		all, err = p.Pipeline.Consume(deltas)
	}
	pubErr := p.flushPending()
	for i := range all {
		// On a mid-batch commit error the uncommitted entries are zero
		// (empty Touched/Removed), so exactly the applied prefix publishes.
		if perr := p.publishStats(all[i]); perr != nil && pubErr == nil {
			pubErr = perr
		}
	}
	if cerr := p.Engine.CatchUp(); cerr != nil && pubErr == nil {
		pubErr = cerr
	}
	if err != nil {
		return all, err
	}
	return all, pubErr
}

// publishStats ships one commit's effects (upserts of its touched entities,
// deletes of its removed ones, plus its link-table deltas) into the engine,
// without catching agents up; callers batch one CatchUp per consume call.
func (p *Platform) publishStats(stats construct.SourceStats) error {
	linkSrcs := linkKeysOf(stats)
	if len(stats.Touched) == 0 && len(stats.Removed) == 0 && len(linkSrcs) == 0 {
		return nil
	}
	payload := make([]*triple.Entity, 0, len(stats.Touched))
	for _, id := range stats.Touched {
		// Shared records: Publish only serializes them into the staging
		// store, and agents replay decoded copies, so the publish path
		// pays no clone per touched entity.
		if e := p.KG.Graph.GetShared(id); e != nil {
			payload = append(payload, e)
		}
	}
	return p.publishRaw(stats.Source, payload, stats.Removed, linkSrcs)
}

// linkKeysOf collects a commit's settled link-table keys (linked and
// unlinked), sorted for deterministic op encoding.
func linkKeysOf(stats construct.SourceStats) []triple.EntityID {
	if len(stats.Links) == 0 && len(stats.Unlinks) == 0 {
		return nil
	}
	keys := make([]triple.EntityID, 0, len(stats.Links)+len(stats.Unlinks))
	for src := range stats.Links {
		keys = append(keys, src)
	}
	keys = append(keys, stats.Unlinks...)
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// resolveLinks splits link-table keys into their current state: keys still
// linked (with their target) and keys gone. Resolution happens at publish
// time — like entity carry state — so retries and conflated groups always
// ship the table's latest truth, which is convergent however publishes and
// commits interleave.
func (p *Platform) resolveLinks(srcs []triple.EntityID) (links map[triple.EntityID]triple.EntityID, unlinks []triple.EntityID) {
	for _, src := range srcs {
		if tgt, ok := p.KG.Lookup(src); ok {
			if links == nil {
				links = make(map[triple.EntityID]triple.EntityID)
			}
			links[src] = tgt
		} else {
			unlinks = append(unlinks, src)
		}
	}
	return links, unlinks
}

// publishRaw is the platform's single gate onto the engine's publish path.
// Link deltas ride the ops: the log is the only durable record of the
// construction link table (entity payloads cannot reproduce it), so recovery
// replays Links/Unlinks alongside the payloads. On failure it queues the
// affected entity IDs and link keys for retry, so a transient engine error
// never leaves the stores permanently behind the KG: the next publish point
// re-syncs them from the KG's then-current state.
func (p *Platform) publishRaw(source string, upserts []*triple.Entity, removed []triple.EntityID, linkSrcs []triple.EntityID) error {
	var err error
	if p.publishHook != nil {
		err = p.publishHook(source)
	}
	links, unlinks := p.resolveLinks(linkSrcs)
	if err == nil && len(upserts) > 0 {
		_, err = p.Engine.PublishOp(oplog.Op{Kind: oplog.OpUpsert, Source: source, Links: links, Unlinks: unlinks}, upserts)
		links, unlinks = nil, nil // attached; don't repeat on the delete op
	}
	if err == nil && len(removed) > 0 {
		_, err = p.Engine.PublishOp(oplog.Op{Kind: oplog.OpDelete, Source: source, EntityIDs: removed, Links: links, Unlinks: unlinks}, nil)
		links, unlinks = nil, nil
	}
	if err == nil && (len(links) > 0 || len(unlinks) > 0) {
		// Links-only op: the commit settled link-table entries without any
		// unpublished entity state (or the entity ops conflated away).
		_, err = p.Engine.PublishOp(oplog.Op{Kind: oplog.OpUpsert, Source: source, Links: links, Unlinks: unlinks}, nil)
	}
	if err != nil {
		ids := make([]triple.EntityID, 0, len(upserts)+len(removed))
		for _, e := range upserts {
			ids = append(ids, e.ID)
		}
		ids = append(ids, removed...)
		p.pendingMu.Lock()
		p.pending = append(p.pending, pendingPublish{source: source, ids: ids, linkSrcs: linkSrcs})
		p.pendingMu.Unlock()
	}
	return err
}

// flushPending retries publishes that previously failed. Each retry syncs the
// stores toward the KG's current state for the recorded entities — upsert the
// ones still present, delete the ones gone — which is idempotent and safe to
// interleave with any later successful publishes of the same entities. Still-
// failing retries re-queue themselves (inside publishRaw).
func (p *Platform) flushPending() error {
	p.pendingMu.Lock()
	pend := p.pending
	p.pending = nil
	p.pendingMu.Unlock()
	var firstErr error
	for _, pp := range pend {
		var upserts []*triple.Entity
		var removed []triple.EntityID
		for _, id := range pp.ids {
			if e := p.KG.Graph.GetShared(id); e != nil {
				upserts = append(upserts, e)
			} else {
				removed = append(removed, id)
			}
		}
		if err := p.publishRaw(pp.source, upserts, removed, pp.linkSrcs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// FeedOptions configures the platform's standing ingestion feed.
type FeedOptions struct {
	// Queue bounds batches accepted but not yet committing; Submit blocks —
	// backpressure — while full. 0 means construct.DefaultFeedQueue.
	Queue int
	// PublishQueue bounds committed batches awaiting the async publisher;
	// the commit loop stalls while full, so a slow Graph Engine
	// backpressures ingestion instead of growing an unbounded unpublished
	// backlog. 0 means construct.DefaultFeedPublishQueue.
	PublishQueue int
}

// Feed opens the platform's standing ingestion feed: a long-lived commit
// loop over the construction pipeline in which batch N+1's validation,
// KG-read snapshotting, and compute begin as soon as batch N's last commit
// (not its publish) finishes, while publishing to the Graph Engine runs on
// an ordered asynchronous publisher off the commit path. The KG a feed
// constructs is byte-identical to back-to-back ConsumeDeltas calls over the
// same batches; the serving stores converge to the same state once the feed
// drains (a batch's BatchResult with a nil Err means it is committed,
// published, and replayed into every agent).
//
// At most one feed is open at a time — the construction pipeline is the
// polystore's single producer. While a feed is open, ConsumeDelta and
// ConsumeDeltas route through it (submit and await), so every publish flows
// through the feed's ordered publisher; checkpoint, serving-refresh, and
// curation paths drain it first. Close the feed (or Drain it) before
// reading the serving stores directly; quiesce submitters before applying
// curation decisions so hot-fix publishes cannot interleave with captured
// batch publishes.
func (p *Platform) Feed(opts FeedOptions) (*construct.Feed, error) {
	if opts.Queue <= 0 {
		opts.Queue = p.feedDefaults.Queue
	}
	if opts.PublishQueue <= 0 {
		opts.PublishQueue = p.feedDefaults.PublishQueue
	}
	p.feedMu.Lock()
	defer p.feedMu.Unlock()
	if p.feed != nil && !p.feed.Terminated() {
		// Closed-but-still-draining counts as open: its commit loop and
		// publisher are still producing, and two feeds would break the
		// engine's single-producer ordering.
		return nil, fmt.Errorf("core: a standing feed is already open")
	}
	var f *construct.Feed
	if p.Partitioned != nil {
		// Partitioned publish builds its events from batch stats and captures
		// entity state at publish time (not commit time): entities with
		// deferred volatile ops are carried to the next exchange, and carried
		// state re-captures after the flush — capture-at-commit would pin the
		// pre-flush bytes.
		f = construct.NewPartitionedFeed(p.Partitioned, construct.FeedOptions{
			Queue:        opts.Queue,
			PublishQueue: opts.PublishQueue,
			Publish:      p.publishPartitionedGroup,
			// Close must leave nothing deferred: exchange and publish the
			// whole carry set before it returns, so a closed feed means every
			// store reflects every committed batch.
			OnClose: p.finalExchange,
		})
	} else {
		f = construct.NewFeed(p.Pipeline, construct.FeedOptions{
			Queue:        opts.Queue,
			PublishQueue: opts.PublishQueue,
			OnCommit:     p.captureFeedBatch,
			Publish:      p.publishFeedGroup,
		})
	}
	p.feed = f
	return f, nil
}

// capturedOp is one delta's publish payload, captured on the feed's commit
// loop right after its batch commits. Capturing there (shared records — no
// clone, just pointer grabs) pins exactly the entity states the commit
// produced, so the async publisher appends the same operations to the log
// that the synchronous path would have, no matter how far construction has
// advanced by the time the publish runs.
type capturedOp struct {
	source   string
	upserts  []*triple.Entity
	removed  []triple.EntityID
	linkSrcs []triple.EntityID
}

// captureFeedBatch is the feed's OnCommit hook (commit loop, ordered).
func (p *Platform) captureFeedBatch(b *construct.FeedBatch) {
	if b.Barrier {
		// Barrier batches commit nothing; their payload is the injector's
		// (e.g. a checkpoint request riding the ordered queue).
		return
	}
	ops := make([]capturedOp, 0, len(b.Stats))
	for i := range b.Stats {
		st := &b.Stats[i]
		linkSrcs := linkKeysOf(*st)
		if len(st.Touched) == 0 && len(st.Removed) == 0 && len(linkSrcs) == 0 {
			continue
		}
		op := capturedOp{source: st.Source, removed: st.Removed, linkSrcs: linkSrcs}
		for _, id := range st.Touched {
			if e := p.KG.Graph.GetShared(id); e != nil {
				op.upserts = append(op.upserts, e)
			}
		}
		ops = append(ops, op)
	}
	b.Payload = ops
}

// publishFeedGroup is the feed's Publish hook (publisher goroutine, ordered):
// it retries any queued failed publishes, appends the group's captured
// operations to the log, and catches every agent up — the expensive half of
// the old synchronous publish path, now off the commit loop.
//
// The group is the publisher's whole backlog, which enables conflation
// (group commit): an entity touched by several batches of the group is
// published once, at its final captured state, under the source that wrote
// it last. The stores converge to exactly the state per-batch publishing
// would have reached — captured records are immutable and the final state is
// the last batch's — while the log carries one operation per entity per
// drain instead of one per entity per batch. On an update-heavy stream this
// is what lets a publisher that falls behind catch back up instead of
// lagging forever.
func (p *Platform) publishFeedGroup(group []*construct.FeedBatch) error {
	// Retry failures belong to the batch that first reported them; they stay
	// queued (flushPending re-queues what still fails) without failing this
	// group's results.
	_ = p.flushPending()

	// Flatten the group's captured ops into per-entity events, in capture
	// order, then keep only each entity's last event. Consecutive survivors
	// from the same source and kind collapse into one log operation, so op
	// granularity adapts to however the sources interleave.
	type event struct {
		source string
		id     triple.EntityID
		e      *triple.Entity // nil means delete
	}
	var evs []event
	linkBySrc := make(map[string]map[triple.EntityID]bool)
	published, wantCkpt := 0, false
	for _, b := range group {
		if b.Barrier {
			if _, ok := b.Payload.(checkpointRequest); ok {
				wantCkpt = true
			}
			continue
		}
		published++
		ops, _ := b.Payload.([]capturedOp)
		for _, op := range ops {
			for _, e := range op.upserts {
				evs = append(evs, event{source: op.source, id: e.ID, e: e})
			}
			for _, id := range op.removed {
				evs = append(evs, event{source: op.source, id: id})
			}
			for _, src := range op.linkSrcs {
				set := linkBySrc[op.source]
				if set == nil {
					set = make(map[triple.EntityID]bool)
					linkBySrc[op.source] = set
				}
				set[src] = true
			}
		}
	}
	last := make(map[triple.EntityID]int, len(evs))
	for i, ev := range evs {
		last[ev.id] = i
	}
	// takeLinks hands a source its conflated link-table keys, once: the keys
	// ride the source's first published op of the group (resolution happens at
	// publish time against the fully committed KG, so where in the group they
	// resolve cannot change the outcome).
	takeLinks := func(source string) []triple.EntityID {
		set := linkBySrc[source]
		if len(set) == 0 {
			delete(linkBySrc, source)
			return nil
		}
		delete(linkBySrc, source)
		srcs := make([]triple.EntityID, 0, len(set))
		for src := range set {
			srcs = append(srcs, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		return srcs
	}
	var firstErr error
	flush := func(source string, upserts []*triple.Entity, removed []triple.EntityID) {
		if len(upserts) == 0 && len(removed) == 0 {
			return
		}
		if err := p.publishRaw(source, upserts, removed, takeLinks(source)); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	var (
		runSource  string
		runUpserts []*triple.Entity
		runRemoved []triple.EntityID
	)
	for i, ev := range evs {
		if last[ev.id] != i {
			continue // a later batch republished or deleted this entity
		}
		if ev.source != runSource {
			flush(runSource, runUpserts, runRemoved)
			runSource, runUpserts, runRemoved = ev.source, nil, nil
		}
		if ev.e != nil {
			runUpserts = append(runUpserts, ev.e)
		} else {
			runRemoved = append(runRemoved, ev.id)
		}
	}
	flush(runSource, runUpserts, runRemoved)
	// A source whose entity events all conflated away still owes its link
	// deltas: they ride a links-only op, one per source, in source order.
	if len(linkBySrc) > 0 {
		rest := make([]string, 0, len(linkBySrc))
		for source := range linkBySrc {
			rest = append(rest, source)
		}
		sort.Strings(rest)
		for _, source := range rest {
			if err := p.publishRaw(source, nil, nil, takeLinks(source)); err != nil && firstErr == nil {
				firstErr = err
			}
		}
	}
	if err := p.Engine.CatchUp(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.maybeCheckpoint(published, wantCkpt); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// publishPartitionedGroup is the partitioned feed's Publish hook (publisher
// goroutine, ordered). It folds the group's per-entity events into the carry
// set (last writer wins), then either publishes everything — after running a
// cross-partition exchange, every exchangeEvery batches — or publishes only
// the entities whose state is already final, carrying the volatile-deferred
// rest to the next exchange. Deferral is the partitioned win on churn-heavy
// streams: an entity overwritten in every batch of an exchange window costs
// one graph write, one log op, and one replay instead of one per batch.
func (p *Platform) publishPartitionedGroup(group []*construct.FeedBatch) error {
	p.pubMu.Lock()
	published, wantCkpt := 0, false
	for _, b := range group {
		if b.Barrier {
			if _, ok := b.Payload.(checkpointRequest); ok {
				wantCkpt = true
			}
			continue
		}
		published++
		for i := range b.Stats {
			st := &b.Stats[i]
			for _, id := range st.Touched {
				p.pubCarry[id] = st.Source
			}
			for _, id := range st.Removed {
				p.pubCarry[id] = st.Source
			}
			for src := range st.Links {
				p.linkCarry[src] = true
			}
			for _, src := range st.Unlinks {
				p.linkCarry[src] = true
			}
		}
	}
	p.pubBatches += published
	// A checkpoint turn forces a full exchange first: the snapshot then
	// covers the deferred volatile backlog and the whole carry set, so the
	// checkpoint is a true batch-boundary state.
	exchange := p.pubBatches >= p.exchangeEvery || wantCkpt
	if exchange {
		p.Partitioned.FlushVolatile()
		p.pubBatches = 0
	}
	firstErr := p.publishCarryLocked(!exchange)
	p.pubMu.Unlock()
	if err := p.maybeCheckpoint(published, wantCkpt); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// publishCarryLocked publishes carried entities at their current KG state
// (upsert if present, delete if gone — the same convergent capture
// flushPending uses) and catches every agent up. With skipPending, entities
// whose volatile backlog has not flushed stay carried so the stores never
// observe a state the single pipeline couldn't have published. Callers hold
// pubMu.
func (p *Platform) publishCarryLocked(skipPending bool) error {
	firstErr := p.flushPending()
	ids := make([]triple.EntityID, 0, len(p.pubCarry))
	for id := range p.pubCarry {
		if skipPending && p.Partitioned.HasPending(id) {
			continue
		}
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	var (
		runSource  string
		runUpserts []*triple.Entity
		runRemoved []triple.EntityID
	)
	flush := func() {
		if len(runUpserts) == 0 && len(runRemoved) == 0 {
			return
		}
		if err := p.publishRaw(runSource, runUpserts, runRemoved, nil); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	for _, id := range ids {
		source := p.pubCarry[id]
		if source != runSource {
			flush()
			runSource, runUpserts, runRemoved = source, nil, nil
		}
		if e := p.KG.Graph.GetShared(id); e != nil {
			runUpserts = append(runUpserts, e)
		} else {
			runRemoved = append(runRemoved, id)
		}
		delete(p.pubCarry, id)
	}
	flush()
	// Carried link-table deltas publish with every carry round (links settle
	// at commit, so publish-time resolution is already final; deferral would
	// only delay recovery's view of the table).
	if len(p.linkCarry) > 0 {
		srcs := make([]triple.EntityID, 0, len(p.linkCarry))
		for src := range p.linkCarry {
			srcs = append(srcs, src)
			delete(p.linkCarry, src)
		}
		sort.Slice(srcs, func(i, j int) bool { return srcs[i] < srcs[j] })
		if err := p.publishRaw("construction", nil, nil, srcs); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := p.Engine.CatchUp(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// finalExchange forces a cross-partition exchange and publishes the whole
// carry set; the partitioned drain path runs it so direct readers of the
// serving stores observe fully exchanged, fully published state. Publish
// errors stay queued for retry (flushPending), exactly like the single
// pipeline's failed publishes.
func (p *Platform) finalExchange() {
	if p.Partitioned == nil {
		return
	}
	p.pubMu.Lock()
	defer p.pubMu.Unlock()
	p.Partitioned.FlushVolatile()
	p.pubBatches = 0
	_ = p.publishCarryLocked(false) //saga:errok failed publishes re-queue inside publishRaw and retry at the next publish point
}

// openFeed returns the standing feed if one is open, nil otherwise.
func (p *Platform) openFeed() *construct.Feed {
	p.feedMu.Lock()
	defer p.feedMu.Unlock()
	if p.feed != nil && !p.feed.Closed() {
		return p.feed
	}
	return nil
}

// drainFeed waits until the standing feed (if there is one — open or still
// closing) has committed and published every batch submitted before this
// call, so direct readers of the serving stores observe a state that
// includes them. Batch errors surface on the per-batch result channels, not
// here. Batches submitted concurrently with the drain land afterwards —
// callers that need a quiescent platform (for example curation runs) should
// stop submitting or Close the feed first.
func (p *Platform) drainFeed() {
	p.feedMu.Lock()
	f := p.feed
	p.feedMu.Unlock()
	if f != nil {
		f.Drain()
	}
	// Partitioned mode: the drained batches may have deferred volatile state
	// and carried (unpublished) entities; exchange and publish them so the
	// graph and every store reflect the drained batches completely.
	p.finalExchange()
}

// Close shuts the platform down, in dependency order: the standing feed (if
// open) is closed and its backlog published, deferred partitioned state is
// settled, the background compactor is stopped and waited for, and only then
// do the operation log, staging store, checkpoint store, entity store, and
// text index release their storage backends (for durable backends that also
// syncs and closes their files) — so no compaction or publish can race a
// closing store, and a clean Close leaves no deferred exchanges or orphaned
// segments behind. Close is not safe concurrently with other platform calls;
// the platform is unusable afterwards. Reopen with Open to recover.
func (p *Platform) Close() error {
	p.feedMu.Lock()
	f := p.feed
	p.feedMu.Unlock()
	var firstErr error
	if f != nil && !f.Closed() {
		if err := f.Close(); err != nil {
			firstErr = err
		}
	}
	// Settle any deferred partitioned state before the log closes.
	p.finalExchange()
	p.stopCompactor()
	if p.Checkpoints != nil {
		if err := p.Checkpoints.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	if err := p.Engine.Log.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.Engine.Staging.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.EntityStore.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	if err := p.TextIndex.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}

// Checkpoint publishes a construction checkpoint — durably snapshotting the
// KG when the platform has a checkpoint store — and materializes all
// registered views over a consistent snapshot of the graph replica. The
// snapshot is copy-on-write (O(shards), not O(|KG|)), so a view refresh on a
// large graph neither pays a deep copy nor stalls concurrent commits. With a
// standing feed open the checkpoint rides the feed's ordered publisher (a
// barrier turn), covering every batch submitted before this call without
// stalling the commit loop.
func (p *Platform) Checkpoint() (views.RunStats, error) {
	if err := p.checkpointNow(); err != nil {
		return views.RunStats{}, err
	}
	names := p.ViewCatalog.Names()
	if len(names) == 0 {
		return views.RunStats{}, nil
	}
	ctx := views.NewContext(p.GraphReplica.Snapshot())
	return p.ViewManager.Materialize(ctx, names...)
}

// checkpointRequest is the barrier payload that asks the feed's publisher
// for a checkpoint at the barrier's ordered turn.
type checkpointRequest struct{}

// checkpointNow takes one checkpoint: through the open feed's ordered
// publisher when there is one, directly otherwise.
func (p *Platform) checkpointNow() error {
	if f := p.openFeed(); f != nil {
		res := <-f.Barrier(checkpointRequest{})
		if !errors.Is(res.Err, construct.ErrFeedClosed) {
			return res.Err
		}
		// Closed between openFeed and Barrier: settle its backlog, then
		// checkpoint directly.
		f.Drain()
	}
	p.drainFeed() // also settles deferred partitioned state
	if err := p.flushPending(); err != nil {
		return err
	}
	_, err := p.runCheckpoint()
	return err
}

// RefreshServing pushes the stable KG into the live store (the stable view
// the live KG unions with streaming sources) with importance-based boosts,
// and points live mention resolution plus the intent handler at NERD when
// built. An open standing feed is drained first and queued publish retries
// are flushed, so the stable view includes every batch submitted before this
// call (best-effort: a still-failing engine leaves the replica at its last
// converged state).
func (p *Platform) RefreshServing() {
	p.drainFeed()
	_ = p.flushPending()
	_ = p.Engine.CatchUp() // converge agents on whatever reached the log
	scores := importance.Compute(p.GraphReplica, importance.Options{})
	boosts := make(map[triple.EntityID]float64, len(scores))
	var stable []*triple.Entity
	// Shared records suffice: the live store clones on Put, so the stable
	// view loads without an extra copy of the whole KG.
	p.GraphReplica.RangeShared(func(e *triple.Entity) bool {
		stable = append(stable, e)
		return true
	})
	for id, s := range scores {
		boosts[id] = s.Importance
	}
	p.LiveConstructor.LoadStableView(stable, boosts)
}

// BuildNERD materializes the NERD Entity View over the current replica and
// wires the stack into object resolution (construction), live mention
// resolution, and intent argument resolution. The replica snapshot it reads
// is copy-on-write, so rebuilding NERD on a large KG no longer deep-copies
// the graph or blocks replica writes for the duration.
func (p *Platform) BuildNERD() *nerd.NERD {
	p.drainFeed()
	_ = p.flushPending()
	_ = p.Engine.CatchUp()
	scores := importance.Compute(p.GraphReplica, importance.Options{})
	view := nerd.BuildEntityView(p.GraphReplica.Snapshot(), scores)
	p.NERD = nerd.New(view, nerd.NewModel(nil))
	if p.Partitioned != nil {
		p.Partitioned.Resolver = p.NERD
	} else {
		p.Pipeline.Resolver = p.NERD
	}
	p.LiveConstructor.Resolver = p.NERD
	p.Intents.Resolver = p.NERD
	return p.NERD
}

// Query executes a KGQ query against the live engine: the text compiles
// once through the engine's plan cache (Parse → Plan), then the plan runs
// against the current store snapshot with per-version result caching.
func (p *Platform) Query(text string) (kgq.Result, error) {
	plan, err := p.LiveEngine.PlanText(text)
	if err != nil {
		return kgq.Result{}, err
	}
	return p.LiveEngine.Execute(plan)
}

// ApplyCurationDecisions drains curation decisions from the live queue and
// feeds them to the stable KG as the curation streaming source (§4.3): edits
// become updated facts, blocks become deletions of the offending fact's
// source attribution.
func (p *Platform) ApplyCurationDecisions() (int, error) {
	decisions := p.Curation.DrainDecisions()
	if len(decisions) == 0 {
		return 0, nil
	}
	// Curation writes the graph directly and publishes through the engine;
	// serialize behind the standing feed so hot fixes land on (and publish
	// after) every batch submitted before them. Submitters racing this call
	// can still commit afterwards — quiesce the feed around curation runs
	// if hot fixes must not interleave with in-flight batches.
	p.drainFeed()
	if err := p.flushPending(); err != nil {
		return 0, err
	}
	for _, d := range decisions {
		switch d.Kind {
		case live.DecisionEdit:
			p.KG.Graph.Update(d.Entity, func(e *triple.Entity) {
				for i, t := range e.Triples {
					if t.Key() == d.Fact.Key() {
						e.Triples[i].Object = d.NewValue
						e.Triples[i].Sources = []string{live.CurationSource}
						e.Triples[i].Trust = []float64{1}
					}
				}
			})
		case live.DecisionBlock:
			p.KG.Graph.Update(d.Entity, func(e *triple.Entity) {
				kept := e.Triples[:0]
				for _, t := range e.Triples {
					if t.Key() != d.Fact.Key() {
						kept = append(kept, t)
					}
				}
				e.Triples = kept
			})
		case live.DecisionBlockEntity:
			p.KG.Graph.Delete(d.Entity)
		}
		// Curation writes bypass the construction pipeline, so report the
		// touched entity to the pipeline's KG-derived caches (block index,
		// alias-resolver cache) ourselves.
		p.refreshKGCaches(d.Entity)
		// Publish the hot fix so every store converges.
		if d.Kind == live.DecisionBlockEntity {
			if _, err := p.Engine.PublishDelete(live.CurationSource, []triple.EntityID{d.Entity}); err != nil {
				return 0, err
			}
		} else if e := p.KG.Graph.GetShared(d.Entity); e != nil {
			if _, err := p.Engine.Publish(oplog.OpCuration, live.CurationSource, []*triple.Entity{e}); err != nil {
				return 0, err
			}
		}
	}
	return len(decisions), p.Engine.CatchUp()
}

// refreshKGCaches reports direct graph writes to whichever construction
// pipeline owns the KG-derived caches.
func (p *Platform) refreshKGCaches(ids ...triple.EntityID) {
	if p.Partitioned != nil {
		p.Partitioned.RefreshKGCaches(ids...)
		return
	}
	p.Pipeline.RefreshKGCaches(ids...)
}

// DrainConflicts returns and clears the construction pipeline's accumulated
// fusion conflicts, whichever pipeline mode the platform runs.
func (p *Platform) DrainConflicts() []construct.Conflict {
	if p.Partitioned != nil {
		return p.Partitioned.DrainConflicts()
	}
	return p.Pipeline.DrainConflicts()
}

// Stats summarizes the platform state.
type Stats struct {
	Graph        triple.Stats
	Links        int
	LogLSN       uint64
	LiveEntities int
	// BlockIndex reports the incremental linking index (zero when the
	// platform runs full-scan linking).
	BlockIndex construct.BlockIndexStats
	// Fusion reports the commit phase's fusion traffic; Payloads/Targets is
	// the per-target batching amortization.
	Fusion construct.FusionStats
	// Partitions is the construction partition count (0 in single-pipeline
	// mode); Volatile counts partitioned mode's deferred-overwrite traffic.
	Partitions int
	Volatile   construct.VolatileBacklogStats
}

// Stats gathers platform statistics.
func (p *Platform) Stats() Stats {
	st := Stats{
		Graph:        p.KG.Graph.Stats(),
		Links:        p.KG.LinkCount(),
		LogLSN:       p.Engine.Log.LastLSN(),
		LiveEntities: p.Live.Len(),
	}
	if p.Partitioned != nil {
		st.Fusion = p.Partitioned.FusionStats()
		st.Partitions = p.Partitioned.Partitions()
		st.Volatile = p.Partitioned.VolatileStats()
		// Aggregate the per-partition block indexes into one platform view.
		for _, part := range p.Partitioned.Parts() {
			if part.Index == nil {
				continue
			}
			s := part.Index.Stats()
			st.BlockIndex.Entities += s.Entities
			st.BlockIndex.Types += s.Types
			st.BlockIndex.Keys += s.Keys
			st.BlockIndex.Probes += s.Probes
			st.BlockIndex.Refreshes += s.Refreshes
		}
		return st
	}
	st.Fusion = p.Pipeline.FusionStats()
	if p.Pipeline.Index != nil {
		st.BlockIndex = p.Pipeline.Index.Stats()
	}
	return st
}
