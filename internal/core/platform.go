// Package core wires Saga's subsystems into the end-to-end platform of
// Figure 1: source ingestion feeds the batch construction pipeline, the
// construction pipeline is the sole producer into the Graph Engine's
// operation log, orchestration agents derive every store's view of the KG,
// views materialize on checkpoints, the live graph serves a view of the
// stable KG unioned with streaming sources, and the ML services (NERD,
// embeddings, importance) are built over the same engine.
package core

import (
	"fmt"
	"io"

	"saga/internal/construct"
	"saga/internal/graphengine"
	"saga/internal/importance"
	"saga/internal/ingest"
	"saga/internal/live"
	"saga/internal/live/kgq"
	"saga/internal/nerd"
	"saga/internal/ontology"
	"saga/internal/oplog"
	"saga/internal/store/entitystore"
	"saga/internal/store/textindex"
	"saga/internal/triple"
	"saga/internal/views"
)

// Options configures a platform.
type Options struct {
	// Ontology defaults to ontology.Default().
	Ontology *ontology.Ontology
	// OplogPath makes the operation log durable; empty keeps it in memory.
	OplogPath string
	// LinkParams tunes the construction linking stage.
	LinkParams construct.LinkParams
	// Workers bounds the construction pipeline's intra-delta parallelism
	// (pair scoring, component clustering, object resolution). 0 means
	// GOMAXPROCS; 1 forces the sequential reference path. The constructed KG
	// is identical for every value — workers only change wall-clock time.
	Workers int
	// FullScanLinking disables the incremental block index and links every
	// delta by scanning the full per-type KG view, the pre-index reference
	// path. The default (false) maintains a persistent block-key → entity-ID
	// index alongside the KG so per-delta linking cost tracks the delta, not
	// the accumulated graph. Both modes construct byte-identical KGs.
	FullScanLinking bool
	// PerEntityFusion disables batched per-target fusion in the commit phase
	// and fuses payload entities one graph round-trip at a time, the
	// pre-batching reference path kept as the ablation baseline.
	PerEntityFusion bool
}

// Platform is the assembled knowledge platform.
type Platform struct {
	Ont      *ontology.Ontology
	KG       *construct.KG
	Pipeline *construct.Pipeline

	Engine       *graphengine.Engine
	EntityStore  *entitystore.Store
	TextIndex    *textindex.Index
	GraphReplica *triple.Graph

	ViewCatalog *views.Catalog
	ViewManager *views.Manager

	Live            *live.Store
	LiveConstructor *live.Constructor
	LiveEngine      *kgq.Engine
	Intents         *live.IntentHandler
	Curation        *live.Queue

	// NERD is built on demand by BuildNERD.
	NERD *nerd.NERD

	snapshots map[string]ingest.Snapshot
}

// New assembles a platform.
func New(opts Options) (*Platform, error) {
	ont := opts.Ontology
	if ont == nil {
		ont = ontology.Default()
	}
	log, err := oplog.Open(opts.OplogPath)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	staging := graphengine.NewObjectStore()
	if opts.OplogPath != "" {
		staging, err = graphengine.NewDirObjectStore(opts.OplogPath + ".staging")
		if err != nil {
			return nil, fmt.Errorf("core: %w", err)
		}
	}
	p := &Platform{
		Ont:          ont,
		KG:           construct.NewKG(),
		Engine:       graphengine.NewWithStaging(log, staging),
		EntityStore:  entitystore.New(),
		TextIndex:    textindex.New(),
		GraphReplica: triple.NewGraph(),
		ViewCatalog:  views.NewCatalog(),
		Live:         live.NewStore(),
		Curation:     live.NewQueue(),
		snapshots:    make(map[string]ingest.Snapshot),
	}
	p.Pipeline = construct.NewPipeline(p.KG, ont)
	p.Pipeline.Link = opts.LinkParams
	p.Pipeline.Workers = opts.Workers
	p.Pipeline.PerEntityFusion = opts.PerEntityFusion
	if !opts.FullScanLinking {
		p.Pipeline.EnableBlockIndex()
	}
	p.ViewManager = views.NewManager(p.ViewCatalog)
	p.Engine.RegisterAgent(graphengine.EntityStoreAgent{Store: p.EntityStore})
	p.Engine.RegisterAgent(graphengine.TextIndexAgent{Index: p.TextIndex})
	p.Engine.RegisterAgent(graphengine.GraphAgent{Graph: p.GraphReplica})
	p.LiveConstructor = &live.Constructor{Store: p.Live}
	p.LiveEngine = kgq.NewEngine(p.Live)
	p.Intents = live.NewIntentHandler(p.Live, nil)
	return p, nil
}

// IngestSource runs a source's ingestion pipeline over a published data
// version (import → transform → align → delta) and consumes the delta into
// the KG. The per-source snapshot is kept so the next run diffs against it.
func (p *Platform) IngestSource(src *ingest.Source, data io.Reader) (construct.SourceStats, error) {
	res, err := src.Run(data, p.snapshots[src.Name], p.Ont)
	if err != nil {
		return construct.SourceStats{}, err
	}
	p.snapshots[src.Name] = res.Snapshot
	return p.ConsumeDelta(res.Delta)
}

// ConsumeDelta runs one delta through construction and publishes the touched
// entities to the Graph Engine, then replays agents so all stores converge.
func (p *Platform) ConsumeDelta(d ingest.Delta) (construct.SourceStats, error) {
	stats, err := p.Pipeline.ConsumeDelta(d)
	if err != nil {
		return stats, err
	}
	if err := p.publish(d.Source, stats); err != nil {
		return stats, err
	}
	return stats, nil
}

// ConsumeDeltas consumes several sources through the pipelined commit path
// (commit i overlaps the compute of deltas j > i), then publishes. Every
// delta of the batch links against the KG state at batch start (that is what
// makes the batch deterministic), so two sources in one batch that describe
// the same real-world entity each mint their own KG entity — and resolution
// never merges two existing KG entities afterwards (≤1 graph entity per
// cluster). Batch only independent sources; consume related sources in
// separate calls so the later one links against the earlier one's output.
func (p *Platform) ConsumeDeltas(deltas []ingest.Delta) ([]construct.SourceStats, error) {
	all, err := p.Pipeline.Consume(deltas)
	if err != nil {
		return all, err
	}
	for i := range all {
		if err := p.publish(deltas[i].Source, all[i]); err != nil {
			return all, err
		}
	}
	return all, nil
}

func (p *Platform) publish(source string, stats construct.SourceStats) error {
	if len(stats.Touched) > 0 {
		payload := make([]*triple.Entity, 0, len(stats.Touched))
		for _, id := range stats.Touched {
			// Shared records: Publish only serializes them into the staging
			// store, and agents replay decoded copies, so the publish path
			// pays no clone per touched entity.
			if e := p.KG.Graph.GetShared(id); e != nil {
				payload = append(payload, e)
			}
		}
		if _, err := p.Engine.Publish(oplog.OpUpsert, source, payload); err != nil {
			return err
		}
	}
	if len(stats.Removed) > 0 {
		if _, err := p.Engine.PublishDelete(source, stats.Removed); err != nil {
			return err
		}
	}
	return p.Engine.CatchUp()
}

// Checkpoint publishes a construction checkpoint and materializes all
// registered views over a consistent snapshot of the graph replica. The
// snapshot is copy-on-write (O(shards), not O(|KG|)), so a view refresh on a
// large graph neither pays a deep copy nor stalls concurrent commits.
func (p *Platform) Checkpoint() (views.RunStats, error) {
	if _, err := p.Engine.Publish(oplog.OpCheckpoint, "construction", nil); err != nil {
		return views.RunStats{}, err
	}
	if err := p.Engine.CatchUp(); err != nil {
		return views.RunStats{}, err
	}
	names := p.ViewCatalog.Names()
	if len(names) == 0 {
		return views.RunStats{}, nil
	}
	ctx := views.NewContext(p.GraphReplica.Snapshot())
	return p.ViewManager.Materialize(ctx, names...)
}

// RefreshServing pushes the stable KG into the live store (the stable view
// the live KG unions with streaming sources) with importance-based boosts,
// and points live mention resolution plus the intent handler at NERD when
// built.
func (p *Platform) RefreshServing() {
	scores := importance.Compute(p.GraphReplica, importance.Options{})
	boosts := make(map[triple.EntityID]float64, len(scores))
	var stable []*triple.Entity
	// Shared records suffice: the live store clones on Put, so the stable
	// view loads without an extra copy of the whole KG.
	p.GraphReplica.RangeShared(func(e *triple.Entity) bool {
		stable = append(stable, e)
		return true
	})
	for id, s := range scores {
		boosts[id] = s.Importance
	}
	p.LiveConstructor.LoadStableView(stable, boosts)
}

// BuildNERD materializes the NERD Entity View over the current replica and
// wires the stack into object resolution (construction), live mention
// resolution, and intent argument resolution. The replica snapshot it reads
// is copy-on-write, so rebuilding NERD on a large KG no longer deep-copies
// the graph or blocks replica writes for the duration.
func (p *Platform) BuildNERD() *nerd.NERD {
	scores := importance.Compute(p.GraphReplica, importance.Options{})
	view := nerd.BuildEntityView(p.GraphReplica.Snapshot(), scores)
	p.NERD = nerd.New(view, nerd.NewModel(nil))
	p.Pipeline.Resolver = p.NERD
	p.LiveConstructor.Resolver = p.NERD
	p.Intents.Resolver = p.NERD
	return p.NERD
}

// Query executes a KGQ query against the live engine.
func (p *Platform) Query(text string) (kgq.Result, error) {
	return p.LiveEngine.Query(text)
}

// ApplyCurationDecisions drains curation decisions from the live queue and
// feeds them to the stable KG as the curation streaming source (§4.3): edits
// become updated facts, blocks become deletions of the offending fact's
// source attribution.
func (p *Platform) ApplyCurationDecisions() (int, error) {
	decisions := p.Curation.DrainDecisions()
	if len(decisions) == 0 {
		return 0, nil
	}
	for _, d := range decisions {
		switch d.Kind {
		case live.DecisionEdit:
			p.KG.Graph.Update(d.Entity, func(e *triple.Entity) {
				for i, t := range e.Triples {
					if t.Key() == d.Fact.Key() {
						e.Triples[i].Object = d.NewValue
						e.Triples[i].Sources = []string{live.CurationSource}
						e.Triples[i].Trust = []float64{1}
					}
				}
			})
		case live.DecisionBlock:
			p.KG.Graph.Update(d.Entity, func(e *triple.Entity) {
				kept := e.Triples[:0]
				for _, t := range e.Triples {
					if t.Key() != d.Fact.Key() {
						kept = append(kept, t)
					}
				}
				e.Triples = kept
			})
		case live.DecisionBlockEntity:
			p.KG.Graph.Delete(d.Entity)
		}
		// Curation writes bypass the construction pipeline, so report the
		// touched entity to the pipeline's KG-derived caches (block index,
		// alias-resolver cache) ourselves.
		p.Pipeline.RefreshKGCaches(d.Entity)
		// Publish the hot fix so every store converges.
		if d.Kind == live.DecisionBlockEntity {
			if _, err := p.Engine.PublishDelete(live.CurationSource, []triple.EntityID{d.Entity}); err != nil {
				return 0, err
			}
		} else if e := p.KG.Graph.GetShared(d.Entity); e != nil {
			if _, err := p.Engine.Publish(oplog.OpCuration, live.CurationSource, []*triple.Entity{e}); err != nil {
				return 0, err
			}
		}
	}
	return len(decisions), p.Engine.CatchUp()
}

// Stats summarizes the platform state.
type Stats struct {
	Graph        triple.Stats
	Links        int
	LogLSN       uint64
	LiveEntities int
	// BlockIndex reports the incremental linking index (zero when the
	// platform runs full-scan linking).
	BlockIndex construct.BlockIndexStats
	// Fusion reports the commit phase's fusion traffic; Payloads/Targets is
	// the per-target batching amortization.
	Fusion construct.FusionStats
}

// Stats gathers platform statistics.
func (p *Platform) Stats() Stats {
	st := Stats{
		Graph:        p.KG.Graph.Stats(),
		Links:        p.KG.LinkCount(),
		LogLSN:       p.Engine.Log.LastLSN(),
		LiveEntities: p.Live.Len(),
		Fusion:       p.Pipeline.FusionStats(),
	}
	if p.Pipeline.Index != nil {
		st.BlockIndex = p.Pipeline.Index.Stats()
	}
	return st
}
