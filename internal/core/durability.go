package core

import (
	"fmt"
	"sort"

	"saga/internal/graphengine"
	"saga/internal/oplog"
	"saga/internal/triple"
)

// This file implements the platform's durability lifecycle: recovery at Open
// (restore the latest checkpoint, replay only the log suffix), periodic
// checkpoints taken on the feed's ordered publisher, and background log
// compaction through the checkpoint floor.
//
// The consistency argument every piece leans on: a checkpoint is a pure
// function of the operation log — it is captured from the graph replica and
// the link replica immediately after a CatchUp, when both are exactly the
// replay of every op at or below the watermark W = LastLSN. Restoring the
// checkpoint and replaying ops past W therefore reconstructs the same state
// as replaying the whole log, for the construction KG and for every store.
// See docs/INVARIANTS.md#durability-and-recovery.

// DurabilityStats reports the platform's recovery, checkpoint, and
// compaction state.
type DurabilityStats struct {
	// Durable reports whether the platform has a durable checkpoint store.
	Durable bool `json:"durable"`
	// RecoveredLSN is the watermark of the checkpoint Open restored from (0
	// when recovery replayed from genesis), and RecoveredEntities the number
	// of entities it restored. ReplayedOps counts the log-suffix ops replayed
	// past the checkpoint.
	RecoveredLSN      uint64 `json:"recovered_lsn"`
	RecoveredEntities int    `json:"recovered_entities"`
	ReplayedOps       int    `json:"replayed_ops"`
	// Checkpoints counts durable checkpoints saved this session;
	// LastCheckpointLSN is the newest saved watermark.
	Checkpoints       int    `json:"checkpoints"`
	LastCheckpointLSN uint64 `json:"last_checkpoint_lsn"`
	// CompactionFloor is the highest watermark compaction may rewrite
	// through: the penultimate checkpoint watermark, so every retained
	// checkpoint stays at or above any rewritten prefix.
	CompactionFloor  uint64                   `json:"compaction_floor"`
	Compactions      int                      `json:"compactions"`
	CompactionErrors int                      `json:"compaction_errors"`
	LastCompaction   graphengine.CompactStats `json:"last_compaction"`
	// LogOps and LogLSN describe the operation log right now: surviving op
	// count (post-compaction) and head LSN.
	LogOps int    `json:"log_ops"`
	LogLSN uint64 `json:"log_lsn"`
}

// DurabilityStats returns the platform's current durability counters.
func (p *Platform) DurabilityStats() DurabilityStats {
	p.durMu.Lock()
	st := p.durStats
	st.CompactionFloor = p.prevCkptLSN
	p.durMu.Unlock()
	st.Durable = p.Checkpoints != nil
	st.LogOps = p.Engine.Log.Len()
	st.LogLSN = p.Engine.Log.LastLSN()
	return st
}

// applyLinkOp is the link-table agent: it replays each op's link deltas into
// the platform's log-derived link replica, so after a CatchUp the replica is
// exactly the link table at the agents' LSN — the state checkpoints embed.
func (p *Platform) applyLinkOp(op oplog.Op, _ []*triple.Entity) error {
	if len(op.Links) == 0 && len(op.Unlinks) == 0 {
		return nil
	}
	p.linkMu.Lock()
	defer p.linkMu.Unlock()
	for src, tgt := range op.Links {
		p.linkReplica[src] = tgt
	}
	for _, src := range op.Unlinks {
		delete(p.linkReplica, src)
	}
	return nil
}

// snapshotLinkReplica copies the link replica for checkpoint encoding.
func (p *Platform) snapshotLinkReplica() map[triple.EntityID]triple.EntityID {
	p.linkMu.Lock()
	defer p.linkMu.Unlock()
	out := make(map[triple.EntityID]triple.EntityID, len(p.linkReplica))
	for src, tgt := range p.linkReplica {
		out[src] = tgt
	}
	return out
}

// recover restores the platform's state at Open: the latest decodable
// checkpoint primes the construction KG, the link table, and every agent at
// the checkpoint watermark, then only the log suffix past the watermark is
// replayed — into the KG here, into the agents via the CatchUp below. With no
// usable checkpoint it replays the whole log (which, after compaction, is
// itself the conflated history — replay from genesis of a compacted log
// produces the same state the uncompacted log did).
//
// The compaction floor restarts at zero: a checkpoint file older than the
// recovered one may survive on disk, and compacting past it would strand it
// as a recovery source. The first two checkpoints of the new session
// re-establish the floor.
func (p *Platform) recover() error {
	var w uint64
	if p.Checkpoints != nil {
		if lsn, payload, ok := p.Checkpoints.Latest(); ok {
			meta, entities, err := graphengine.DecodeCheckpoint(payload)
			if err == nil && meta.LSN == lsn {
				for _, e := range entities {
					p.KG.Graph.Put(e)
				}
				p.KG.RestoreLinks(meta.Links)
				p.linkMu.Lock()
				for src, tgt := range meta.Links {
					p.linkReplica[src] = tgt
				}
				p.linkMu.Unlock()
				if err := p.Engine.Restore(lsn, entities, nil); err != nil {
					return fmt.Errorf("core: restore checkpoint at lsn %d: %w", lsn, err)
				}
				w = lsn
				p.durStats.RecoveredLSN = lsn
				p.durStats.RecoveredEntities = len(entities)
			}
			// A payload that frames but does not decode is treated as absent:
			// full replay below reconstructs the same state from the log.
		}
	}
	replayed := 0
	err := p.Engine.Replay(w, func(op oplog.Op, entities []*triple.Entity) error {
		switch op.Kind {
		case oplog.OpUpsert, oplog.OpOverwritePartition, oplog.OpCuration:
			for _, e := range entities {
				p.KG.Graph.Put(e)
			}
		case oplog.OpDelete:
			for _, id := range op.EntityIDs {
				p.KG.Graph.Delete(id)
			}
		}
		for src, tgt := range op.Links {
			p.KG.Link(src, tgt)
		}
		for _, src := range op.Unlinks {
			p.KG.Unlink(src)
		}
		replayed++
		return nil
	})
	if err != nil {
		return fmt.Errorf("core: replay log suffix: %w", err)
	}
	p.durStats.ReplayedOps = replayed
	// Restored entities carry minted kg: IDs; re-seed the ID counter so new
	// mints never collide with recovered ones.
	p.KG.Graph.SeedIDs()
	// Agents replay the suffix themselves: restored agents advance from the
	// watermark, volatile stores (memory backend) rebuild from whatever
	// Restore primed plus the suffix.
	if err := p.Engine.CatchUp(); err != nil {
		return fmt.Errorf("core: recovery catch-up: %w", err)
	}
	return nil
}

// runCheckpoint takes one checkpoint: it publishes the OpCheckpoint marker,
// catches every agent up to it, and — when the platform has a durable
// checkpoint store — captures the graph and link replicas (now exactly the
// replay of ops ≤ W) into one atomic checkpoint file at watermark
// W = LastLSN. Afterwards it advances the compaction floor to the previous
// checkpoint's watermark and triggers background compaction when the prefix
// has grown past the configured threshold.
//
// Callers must hold the platform's publish turn (the feed's publisher
// goroutine, or the direct path with no concurrent producers): the capture
// assumes no publish advances the log between the CatchUp and the save.
func (p *Platform) runCheckpoint() (uint64, error) {
	if _, err := p.Engine.Publish(oplog.OpCheckpoint, "construction", nil); err != nil {
		return 0, err
	}
	if err := p.Engine.CatchUp(); err != nil {
		return 0, err
	}
	w := p.Engine.Log.LastLSN()
	if p.Checkpoints == nil {
		return w, nil
	}
	var entities []*triple.Entity
	p.GraphReplica.RangeShared(func(e *triple.Entity) bool {
		entities = append(entities, e)
		return true
	})
	sort.Slice(entities, func(i, j int) bool { return entities[i].ID < entities[j].ID })
	meta := graphengine.CheckpointMeta{LSN: w, Links: p.snapshotLinkReplica()}
	payload, err := graphengine.EncodeCheckpoint(meta, entities)
	if err != nil {
		return 0, fmt.Errorf("core: encode checkpoint: %w", err)
	}
	if err := p.Checkpoints.Save(w, payload); err != nil {
		return 0, fmt.Errorf("core: save checkpoint: %w", err)
	}
	p.durMu.Lock()
	p.durStats.Checkpoints++
	p.durStats.LastCheckpointLSN = w
	floor := p.prevCkptLSN
	p.prevCkptLSN = w
	compact := p.compactAfter > 0 && floor > 0 && p.Engine.Log.PrefixLen(floor) >= p.compactAfter
	p.durMu.Unlock()
	if compact {
		p.triggerCompact(floor)
	}
	return w, nil
}

// maybeCheckpoint runs on the feed's publisher after each publish group:
// force (a checkpoint barrier rode the group) always checkpoints; otherwise
// the published-batch counter decides. In partitioned mode a periodic
// checkpoint forces a full exchange first so the snapshot is a true
// batch-boundary state (the barrier path already exchanged, under the same
// publisher turn).
func (p *Platform) maybeCheckpoint(published int, force bool) error {
	run := force
	if p.Checkpoints != nil && p.ckptEvery > 0 && published > 0 {
		p.durMu.Lock()
		p.ckptBatches += published
		if p.ckptBatches >= p.ckptEvery {
			p.ckptBatches = 0
			run = true
		}
		p.durMu.Unlock()
	}
	if !run {
		return nil
	}
	if p.Partitioned != nil && !force {
		p.pubMu.Lock()
		p.Partitioned.FlushVolatile()
		p.pubBatches = 0
		err := p.publishCarryLocked(false)
		p.pubMu.Unlock()
		if err != nil {
			return err
		}
	}
	_, err := p.runCheckpoint()
	return err
}

// Compact rewrites the log prefix at or below the compaction floor (the
// penultimate checkpoint watermark) to each entity's final captured state —
// per-entity conflation, tombstone elision, link conflation — and reports
// what it did. With fewer than two checkpoints taken this session there is
// no safe floor yet and Compact is a no-op. Safe concurrently with ingestion
// and the background compactor; runs serialize.
func (p *Platform) Compact() (graphengine.CompactStats, error) {
	p.durMu.Lock()
	floor := p.prevCkptLSN
	p.durMu.Unlock()
	if floor == 0 {
		return graphengine.CompactStats{}, nil
	}
	return p.compactThrough(floor)
}

// compactThrough serializes compaction runs and records their outcome.
func (p *Platform) compactThrough(w uint64) (graphengine.CompactStats, error) {
	p.compactRunMu.Lock()
	defer p.compactRunMu.Unlock()
	stats, err := p.Engine.CompactThrough(w)
	p.durMu.Lock()
	if err != nil {
		p.durStats.CompactionErrors++
	} else {
		p.durStats.Compactions++
		p.durStats.LastCompaction = stats
	}
	p.durMu.Unlock()
	return stats, err
}

// compactorLoop runs background compactions, one at a time, off the publish
// path: compaction rewrites only the cold prefix (every agent is already
// past the floor), so ingestion, publishing, and replay proceed in parallel
// with it.
func (p *Platform) compactorLoop() {
	defer close(p.compactDone)
	for w := range p.compactTrig {
		_, _ = p.compactThrough(w) //saga:errok recorded in durStats.CompactionErrors; next checkpoint re-triggers
	}
}

// triggerCompact hands the compactor a floor to compact through; a trigger
// arriving while one is pending coalesces (the pending run covers it at the
// next checkpoint).
func (p *Platform) triggerCompact(w uint64) {
	p.compactMu.Lock()
	defer p.compactMu.Unlock()
	if p.compactStopped {
		return
	}
	select {
	case p.compactTrig <- w:
	default:
	}
}

// stopCompactor stops the background compactor and waits for an in-flight
// run to finish, so Close can shut the log and staging store safely.
func (p *Platform) stopCompactor() {
	p.compactMu.Lock()
	if !p.compactStopped {
		p.compactStopped = true
		close(p.compactTrig)
	}
	p.compactMu.Unlock()
	<-p.compactDone
}
