package core

// Platform-level coverage for partitioned construction: the partitioned
// platform must leave every serving surface — stable KG, graph replica,
// entity store, text search — byte-identical to the single-pipeline platform
// over the same stream, through both the synchronous consume path and the
// standing feed with its exchange-deferred publisher; and the serving stores
// must stay race-free under concurrent readers while a partitioned feed
// ingests (run with -race).

import (
	"fmt"
	"reflect"
	"sort"
	"sync"
	"testing"

	"saga/internal/construct"
	"saga/internal/ingest"
	"saga/internal/live"
	"saga/internal/triple"
	"saga/internal/workload"
)

// partitionedStream builds a mixed stream over sources sharing entity types
// (cross-source fusion) plus the shared city type: adds, shifted-window
// updates, deletes, and rounds of volatile popularity churn — the traffic the
// exchange protocol defers and replays.
func partitionedStream(rounds, sources, count int) [][]ingest.Delta {
	batches := make([][]ingest.Delta, rounds)
	for r := range batches {
		deltas := make([]ingest.Delta, 0, sources)
		for s := 0; s < sources; s++ {
			src := fmt.Sprintf("src%02d", s)
			offset := 0
			if r >= 1 {
				offset = 4
			}
			spec := workload.SourceSpec{
				Name: src, Type: fmt.Sprintf("kind%02d", s%2),
				Offset: offset, Count: count,
				DupRate: 0.1, TypoRate: 0.1, RichFacts: 2,
				Seed: int64(r*100 + s + 1),
			}
			switch {
			case r == 0:
				deltas = append(deltas, spec.Delta())
			case r == 1:
				deltas = append(deltas, ingest.Delta{Source: src, Updated: spec.Entities()})
			default:
				d := ingest.Delta{Source: src}
				if r == 2 {
					d.Deleted = []triple.EntityID{
						triple.EntityID(fmt.Sprintf("%s:e%d", src, s+4)),
					}
				}
				for u := 0; u < count+4; u++ {
					vol := triple.NewEntity(triple.EntityID(fmt.Sprintf("%s:e%d", src, u)))
					vol.Add(triple.New("", "popularity",
						triple.Float(float64(r)+float64(u)/1000)).WithSource(src, 0.9))
					d.Volatile = append(d.Volatile, vol)
				}
				if r%3 == 0 {
					d.Updated = spec.Entities()
				}
				deltas = append(deltas, d)
			}
		}
		batches[r] = deltas
	}
	return batches
}

// servingState flattens every serving surface for byte comparison. It omits
// the log LSN on purpose: partitioned publishing conflates an exchange
// window's churn into fewer log operations, so op counts legitimately differ
// while every store's contents must not.
type servingState struct {
	KG       []triple.Triple
	Replica  []triple.Triple
	Entities []triple.EntityID
	Search   []string
	Links    int
}

func servingStateOf(t *testing.T, p *Platform) servingState {
	t.Helper()
	st := servingState{
		KG:      p.KG.Graph.Triples(),
		Replica: p.GraphReplica.Triples(),
		Links:   p.KG.LinkCount(),
	}
	if err := p.EntityStore.Range(func(e *triple.Entity) bool {
		st.Entities = append(st.Entities, e.ID)
		return true
	}); err != nil {
		t.Fatal(err)
	}
	sort.Slice(st.Entities, func(i, j int) bool { return st.Entities[i] < st.Entities[j] })
	for _, q := range []string{"okafor", "popularity", "guild"} {
		for _, h := range p.TextIndex.Search(q, 10) {
			st.Search = append(st.Search, h.ID)
		}
	}
	return st
}

// TestPartitionedPlatformSyncConsumeIdentity: the synchronous ConsumeDeltas
// path exchanges immediately after each batch, so even the operation log must
// match the single pipeline's op for op.
func TestPartitionedPlatformSyncConsumeIdentity(t *testing.T) {
	batches := partitionedStream(6, 3, 8)
	run := func(partitions int) (servingState, uint64) {
		p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2, Partitions: partitions}})
		for _, b := range batches {
			if _, err := p.ConsumeDeltas(b); err != nil {
				t.Fatal(err)
			}
		}
		return servingStateOf(t, p), p.Engine.Log.LastLSN()
	}
	want, wantLSN := run(1)
	for _, partitions := range []int{2, 4} {
		got, gotLSN := run(partitions)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("partitions=%d: serving state diverged (kg %d vs %d triples, replica %d vs %d, entities %d vs %d, search %v vs %v)",
				partitions, len(got.KG), len(want.KG), len(got.Replica), len(want.Replica),
				len(got.Entities), len(want.Entities), got.Search, want.Search)
		}
		if gotLSN != wantLSN {
			t.Fatalf("partitions=%d: log lsn %d vs %d", partitions, gotLSN, wantLSN)
		}
	}
}

// TestPartitionedPlatformFeedIdentity: the standing feed's partitioned
// publisher defers volatile-pending entities across exchange windows; after
// the feed closes (final exchange), every store must hold exactly the single
// pipeline's bytes.
func TestPartitionedPlatformFeedIdentity(t *testing.T) {
	batches := partitionedStream(8, 3, 8)
	run := func(partitions int) servingState {
		p := newTestPlatform(t, Options{
			Construction: ConstructionOptions{Workers: 2, Partitions: partitions, ExchangeInterval: 3},
		})
		f, err := p.Feed(FeedOptions{Queue: 2, PublishQueue: 1})
		if err != nil {
			t.Fatal(err)
		}
		results := make([]<-chan construct.BatchResult, 0, len(batches))
		for _, b := range batches {
			results = append(results, f.Submit(b))
		}
		for i, ch := range results {
			if res := <-ch; res.Err != nil {
				t.Fatalf("batch %d: %v", i, res.Err)
			}
		}
		if err := f.Close(); err != nil {
			t.Fatal(err)
		}
		if partitions > 1 {
			st := p.Stats()
			if st.Partitions != partitions {
				t.Fatalf("stats partitions = %d", st.Partitions)
			}
			if st.Volatile.Enqueued == 0 {
				t.Fatal("stream exercised no deferred volatile traffic")
			}
			if st.Volatile.Pending != 0 {
				t.Fatalf("pending volatile after close: %+v", st.Volatile)
			}
		}
		return servingStateOf(t, p)
	}
	want := run(1)
	for _, partitions := range []int{2, 4} {
		if got := run(partitions); !reflect.DeepEqual(got, want) {
			t.Fatalf("partitions=%d: serving state diverged after feed drain (kg %d vs %d triples, entities %d vs %d)",
				partitions, len(got.KG), len(want.KG), len(got.Entities), len(want.Entities))
		}
	}
}

// TestPartitionedFeedConcurrentServingReaders hammers the serving surfaces —
// platform stats, COW snapshots, text search, entity store scans, replica
// ranges, KGQ queries — while a partitioned feed ingests volatile-heavy
// batches. Run with -race; the assertions are liveness plus a fully
// exchanged, fully published final state.
func TestPartitionedFeedConcurrentServingReaders(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2, Partitions: 3, ExchangeInterval: 2}})
	batches := partitionedStream(8, 3, 8)
	f, err := p.Feed(FeedOptions{Queue: 2, PublishQueue: 1})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var readers sync.WaitGroup
	for r := 0; r < 3; r++ {
		readers.Add(1)
		go func(r int) {
			defer readers.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				switch r {
				case 0:
					_ = p.Stats()
					snap := p.KG.Graph.Snapshot()
					_ = snap.Len()
				case 1:
					_ = p.TextIndex.Search("okafor", 5)
					_ = p.EntityStore.Range(func(e *triple.Entity) bool { return true })
				case 2:
					p.GraphReplica.RangeShared(func(e *triple.Entity) bool { return true })
					_, _ = p.Query(`entity(type="kind00") | attr("popularity")`)
				}
			}
		}(r)
	}

	results := make([]<-chan construct.BatchResult, 0, len(batches))
	for _, b := range batches {
		results = append(results, f.Submit(b))
	}
	for i, ch := range results {
		if res := <-ch; res.Err != nil {
			t.Fatalf("batch %d: %v", i, res.Err)
		}
	}
	close(stop)
	readers.Wait()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Volatile.Pending != 0 {
		t.Fatalf("pending volatile after close: %+v", st.Volatile)
	}
	if p.GraphReplica.Len() == 0 {
		t.Fatal("replica empty after partitioned feed")
	}
}

// TestPartitionedCurationAndConflicts: curation hot fixes must keep the
// partitioned pipeline's per-partition KG caches transactional with direct
// graph writes, and conflict draining must route to the coordinator.
func TestPartitionedCurationAndConflicts(t *testing.T) {
	p := newTestPlatform(t, Options{Construction: ConstructionOptions{Workers: 2, Partitions: 2}})
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 4, Seed: 5}.Delta()); err != nil {
		t.Fatal(err)
	}
	_ = p.DrainConflicts()
	p.RefreshServing()
	kgID, ok := p.KG.Lookup("s:e0")
	if !ok {
		t.Fatal("link missing")
	}
	ent := p.Live.Get(kgID)
	var nameFact triple.Triple
	for _, tr := range ent.Triples {
		if tr.Predicate == triple.PredName {
			nameFact = tr
		}
	}
	if err := p.Curation.Decide(p.Live, live.Decision{
		Kind: live.DecisionEdit, Entity: kgID, Fact: nameFact, NewValue: triple.String("Corrected Name"),
	}); err != nil {
		t.Fatal(err)
	}
	if n, err := p.ApplyCurationDecisions(); err != nil || n != 1 {
		t.Fatalf("applied = %d, err = %v", n, err)
	}
	if got := p.KG.Graph.Get(kgID).Name(); got != "Corrected Name" {
		t.Fatalf("stable name = %q", got)
	}
	if got, _ := p.EntityStore.Get(kgID); got == nil || got.Name() != "Corrected Name" {
		t.Fatalf("entity store name = %v", got)
	}
	// The rename must be visible to linking through the refreshed partition
	// caches: a new source entity with the corrected name links to kgID.
	d := workload.SourceSpec{Name: "s2", Count: 1, Seed: 6}.Delta()
	if _, err := p.ConsumeDelta(d); err != nil {
		t.Fatal(err)
	}
}
