package core

import (
	"reflect"
	"strings"
	"testing"

	"saga/internal/ingest"
	"saga/internal/live"
	"saga/internal/triple"
	"saga/internal/views"
	"saga/internal/workload"
)

func musicSource() *ingest.Source {
	return &ingest.Source{
		Name:     "musicdb",
		Importer: ingest.CSVImporter{},
		Transform: ingest.TransformConfig{
			IDColumn:    "id",
			MultiValued: []string{"genres"},
		},
		Align: ingest.AlignConfig{
			EntityType: "music_artist",
			Trust:      0.9,
			PGFs: []ingest.PGF{
				{Target: "name", Sources: []string{"name"}, Mode: ingest.ModeCopy},
				{Target: "genre", Sources: []string{"genres"}, Mode: ingest.ModeCopy},
				{Target: "popularity", Sources: []string{"pop"}, Mode: ingest.ModeCopy, Kind: triple.KindFloat},
			},
		},
	}
}

func TestEndToEndIngestServeQuery(t *testing.T) {
	p := newTestPlatform(t, Options{})
	v1 := "id,name,genres,pop\na1,Mira Solane,pop|soul,0.9\na2,Dax Verro,rock,0.7\n"
	stats, err := p.IngestSource(musicSource(), strings.NewReader(v1))
	if err != nil {
		t.Fatal(err)
	}
	if stats.LinkedAdds != 2 || stats.NewEntities != 2 {
		t.Fatalf("stats = %+v", stats)
	}
	// All stores converged through the op log.
	if got := p.GraphReplica.Len(); got != 2 {
		t.Fatalf("replica entities = %d", got)
	}
	if hits := p.TextIndex.Search("mira solane", 1); len(hits) != 1 {
		t.Fatalf("text index = %v", hits)
	}
	// Serve: stable view into the live store, then a KGQ query.
	p.RefreshServing()
	res, err := p.Query(`entity(type="music_artist", name="Mira Solane") | attr("genre")`)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 2 {
		t.Fatalf("genres = %v", res.Texts())
	}
	// Second version: popularity churn only (volatile) plus one new artist.
	v2 := "id,name,genres,pop\na1,Mira Solane,pop|soul,0.4\na2,Dax Verro,rock,0.7\na3,Lena Quoss,jazz,0.5\n"
	stats, err = p.IngestSource(musicSource(), strings.NewReader(v2))
	if err != nil {
		t.Fatal(err)
	}
	if stats.LinkedAdds != 1 {
		t.Fatalf("incremental stats = %+v", stats)
	}
	if p.GraphReplica.Len() != 3 {
		t.Fatalf("replica after v2 = %d", p.GraphReplica.Len())
	}
}

func TestCrossSourceDeduplication(t *testing.T) {
	p := newTestPlatform(t, Options{})
	// Overlapping sources must be consumed in sequence: linking of the
	// second source runs against the KG view that already contains the
	// first source's fused entities (§2.4's fusion synchronization point).
	s1 := workload.SourceSpec{Name: "src1", Offset: 0, Count: 10, Seed: 1}
	s2 := workload.SourceSpec{Name: "src2", Offset: 5, Count: 10, Seed: 2}
	if _, err := p.ConsumeDelta(s1.Delta()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ConsumeDelta(s2.Delta()); err != nil {
		t.Fatal(err)
	}
	// Overlapping universe entities [5,10) must consolidate.
	id1, ok1 := p.KG.Lookup("src1:e7")
	id2, ok2 := p.KG.Lookup("src2:e7")
	if !ok1 || !ok2 {
		t.Fatal("links missing")
	}
	if id1 != id2 {
		t.Fatalf("universe entity 7 split: %s vs %s", id1, id2)
	}
	e := p.KG.Graph.Get(id1)
	if srcs := e.SourceSet(); len(srcs) != 2 {
		t.Fatalf("sources = %v", srcs)
	}
}

func TestCheckpointMaterializesViews(t *testing.T) {
	p := newTestPlatform(t, Options{})
	ran := 0
	if err := p.ViewCatalog.Register(views.Definition{
		Name:   "count-view",
		Create: func(ctx *views.Context) error { ran++; ctx.SetArtifact("count-view", ctx.Graph.Len()); return nil },
	}); err != nil {
		t.Fatal(err)
	}
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 5, Seed: 3}.Delta()); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if ran != 1 {
		t.Fatalf("view ran %d times", ran)
	}
}

func TestLiveStreamOverStableGraph(t *testing.T) {
	p := newTestPlatform(t, Options{})
	teams := []string{"Northfield Comets", "Lakewood Pilots"}
	for _, e := range workload.TeamsGraph(teams) {
		p.KG.Graph.Put(e)
		p.GraphReplica.Put(e)
	}
	p.RefreshServing()
	p.BuildNERD()
	events := workload.StreamSpec{Games: 2, Updates: 10, Teams: teams, Seed: 4}.Events()
	for _, ev := range events {
		if _, err := p.LiveConstructor.Consume(ev); err != nil {
			t.Fatal(err)
		}
	}
	// Streaming facts are queryable with stable-entity joins.
	res, err := p.Query(`entity(name="Northfield Comets") | in("home_team") | attr("home_score")`)
	if err != nil {
		t.Fatal(err)
	}
	// The team may or may not host a game in this sample; the query must at
	// least execute and return consistent shapes.
	if len(res.Values) != 0 && res.Values[0].Kind() != triple.KindInt {
		t.Fatalf("scores = %v", res.Texts())
	}
	total := 0
	for gi := 0; gi < 2; gi++ {
		if g := p.Live.Get(live.LiveID("sportsfeed", "game"+string(rune('0'+gi)))); g != nil {
			total++
			if !g.First("home_team").IsRef() {
				t.Fatalf("game %d home team not linked to stable entity: %v", gi, g.First("home_team"))
			}
		}
	}
	if total == 0 {
		t.Fatal("no games in live store")
	}
}

func TestCurationFlowsToStableKG(t *testing.T) {
	p := newTestPlatform(t, Options{})
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 3, Seed: 5}.Delta()); err != nil {
		t.Fatal(err)
	}
	p.RefreshServing()
	kgID, _ := p.KG.Lookup("s:e0")
	ent := p.Live.Get(kgID)
	var nameFact triple.Triple
	for _, tr := range ent.Triples {
		if tr.Predicate == triple.PredName {
			nameFact = tr
		}
	}
	if err := p.Curation.Decide(p.Live, live.Decision{
		Kind: live.DecisionEdit, Entity: kgID, Fact: nameFact, NewValue: triple.String("Corrected Name"),
	}); err != nil {
		t.Fatal(err)
	}
	// Hot fix visible immediately in the live index.
	if got := p.Live.Get(kgID).Name(); got != "Corrected Name" {
		t.Fatalf("live name = %q", got)
	}
	n, err := p.ApplyCurationDecisions()
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("applied = %d", n)
	}
	// Correction reached the stable graph and the serving stores.
	if got := p.KG.Graph.Get(kgID).Name(); got != "Corrected Name" {
		t.Fatalf("stable name = %q", got)
	}
	if got, _ := p.EntityStore.Get(kgID); got == nil || got.Name() != "Corrected Name" {
		t.Fatalf("entity store name = %v", got)
	}
}

func TestDurableOplogRecovery(t *testing.T) {
	dir := t.TempDir()
	p, err := Open(Options{Durability: DurabilityOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 4, Seed: 6}.Delta()); err != nil {
		t.Fatal(err)
	}
	lsn := p.Engine.Log.LastLSN()
	want := p.GraphReplica.Triples()
	if err := p.Close(); err != nil {
		t.Fatal(err)
	}
	// A fresh platform over the same durability dir recovers to the same
	// state at Open — replay is Open's job, not the caller's.
	p2, err := Open(Options{Durability: DurabilityOptions{Dir: dir}})
	if err != nil {
		t.Fatal(err)
	}
	defer p2.Close()
	if got := p2.Engine.Log.LastLSN(); got != lsn {
		t.Fatalf("recovered lsn = %d, want %d", got, lsn)
	}
	if !reflect.DeepEqual(p2.GraphReplica.Triples(), want) {
		t.Fatal("replica after recovery differs from pre-close replica")
	}
	if p2.KG.Graph.Len() == 0 {
		t.Fatal("construction KG empty after recovery")
	}
}

func TestStats(t *testing.T) {
	p := newTestPlatform(t, Options{})
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "s", Count: 2, Seed: 7}.Delta()); err != nil {
		t.Fatal(err)
	}
	st := p.Stats()
	if st.Graph.Entities == 0 || st.Links == 0 || st.LogLSN == 0 {
		t.Fatalf("stats = %+v", st)
	}
}
