package views

import (
	"fmt"
	"testing"

	"saga/internal/triple"
)

// countingDef builds a definition that increments a counter on Create and
// publishes its run count as its artifact.
func countingDef(name string, deps []string, runs *map[string]int) Definition {
	return Definition{
		Name:      name,
		DependsOn: deps,
		Create: func(ctx *Context) error {
			(*runs)[name]++
			ctx.SetArtifact(name, (*runs)[name])
			return nil
		},
	}
}

func fig7Catalog(t *testing.T, runs *map[string]int) *Catalog {
	t.Helper()
	c := NewCatalog()
	// The Figure 7 DAG: entity features feeds both the ranked entity index
	// and the entity neighbourhood view; embeddings build on the
	// neighbourhood; people embeddings filter the embeddings.
	for _, def := range []Definition{
		countingDef("entity-features", nil, runs),
		countingDef("ranked-entity-index", []string{"entity-features"}, runs),
		countingDef("entity-neighbourhood", []string{"entity-features"}, runs),
		countingDef("graph-embeddings", []string{"entity-neighbourhood"}, runs),
		countingDef("people-embeddings", []string{"graph-embeddings"}, runs),
	} {
		if err := c.Register(def); err != nil {
			t.Fatal(err)
		}
	}
	return c
}

func TestRegisterValidation(t *testing.T) {
	c := NewCatalog()
	if err := c.Register(Definition{Name: "", Create: func(*Context) error { return nil }}); err == nil {
		t.Error("empty name accepted")
	}
	if err := c.Register(Definition{Name: "x"}); err == nil {
		t.Error("nil Create accepted")
	}
	if err := c.Register(Definition{Name: "x", DependsOn: []string{"ghost"},
		Create: func(*Context) error { return nil }}); err == nil {
		t.Error("unknown dependency accepted")
	}
	ok := Definition{Name: "x", Create: func(*Context) error { return nil }}
	if err := c.Register(ok); err != nil {
		t.Fatal(err)
	}
	if err := c.Register(ok); err == nil {
		t.Error("duplicate registration accepted")
	}
}

func TestMaterializeSharesDependencies(t *testing.T) {
	runs := map[string]int{}
	c := fig7Catalog(t, &runs)
	m := NewManager(c)
	ctx := NewContext(triple.NewGraph())
	stats, err := m.Materialize(ctx, "ranked-entity-index", "people-embeddings")
	if err != nil {
		t.Fatal(err)
	}
	// entity-features is shared: it must run exactly once.
	if runs["entity-features"] != 1 {
		t.Fatalf("entity-features ran %d times", runs["entity-features"])
	}
	if len(stats.Materialized) != 5 {
		t.Fatalf("materialized = %v", stats.Materialized)
	}
	if stats.Reused != 1 {
		t.Fatalf("reused = %d, want 1", stats.Reused)
	}
	// Dependencies execute before dependents.
	pos := map[string]int{}
	for i, n := range stats.Materialized {
		pos[n] = i
	}
	if pos["entity-features"] > pos["ranked-entity-index"] ||
		pos["entity-neighbourhood"] > pos["graph-embeddings"] ||
		pos["graph-embeddings"] > pos["people-embeddings"] {
		t.Fatalf("order = %v", stats.Materialized)
	}
}

func TestMaterializeNoReuseRecomputes(t *testing.T) {
	runs := map[string]int{}
	c := fig7Catalog(t, &runs)
	m := NewManager(c)
	ctx := NewContext(triple.NewGraph())
	if _, err := m.MaterializeNoReuse(ctx, "ranked-entity-index", "people-embeddings"); err != nil {
		t.Fatal(err)
	}
	if runs["entity-features"] != 2 {
		t.Fatalf("no-reuse baseline ran entity-features %d times, want 2", runs["entity-features"])
	}
}

func TestRefreshUsesUpdate(t *testing.T) {
	c := NewCatalog()
	var updates, creates int
	def := Definition{
		Name:   "v",
		Create: func(*Context) error { creates++; return nil },
		Update: func(_ *Context, changed []triple.EntityID) error {
			updates += len(changed)
			return nil
		},
	}
	if err := c.Register(def); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c)
	ctx := NewContext(triple.NewGraph())
	if _, err := m.Refresh(ctx, []triple.EntityID{"kg:E1", "kg:E2"}, "v"); err != nil {
		t.Fatal(err)
	}
	if updates != 2 || creates != 0 {
		t.Fatalf("updates=%d creates=%d", updates, creates)
	}
}

func TestRefreshFallsBackToCreate(t *testing.T) {
	c := NewCatalog()
	creates := 0
	if err := c.Register(Definition{Name: "v", Create: func(*Context) error { creates++; return nil }}); err != nil {
		t.Fatal(err)
	}
	m := NewManager(c)
	if _, err := m.Refresh(NewContext(triple.NewGraph()), nil, "v"); err != nil {
		t.Fatal(err)
	}
	if creates != 1 {
		t.Fatalf("creates = %d", creates)
	}
}

func TestCreateErrorPropagates(t *testing.T) {
	c := NewCatalog()
	boom := fmt.Errorf("boom")
	c.Register(Definition{Name: "bad", Create: func(*Context) error { return boom }})
	m := NewManager(c)
	if _, err := m.Materialize(NewContext(triple.NewGraph()), "bad"); err == nil {
		t.Fatal("error swallowed")
	}
}

func TestDropClearsArtifact(t *testing.T) {
	c := NewCatalog()
	dropped := false
	c.Register(Definition{
		Name:   "v",
		Create: func(ctx *Context) error { ctx.SetArtifact("v", 42); return nil },
		Drop:   func(*Context) error { dropped = true; return nil },
	})
	m := NewManager(c)
	ctx := NewContext(triple.NewGraph())
	if _, err := m.Materialize(ctx, "v"); err != nil {
		t.Fatal(err)
	}
	if _, ok := ctx.Artifact("v"); !ok {
		t.Fatal("artifact missing after materialize")
	}
	if err := m.Drop(ctx, "v"); err != nil {
		t.Fatal(err)
	}
	if !dropped {
		t.Fatal("drop procedure not called")
	}
	if _, ok := ctx.Artifact("v"); ok {
		t.Fatal("artifact survives drop")
	}
	if err := m.Drop(ctx, "ghost"); err == nil {
		t.Fatal("dropping unknown view succeeded")
	}
}

func TestUnknownViewErrors(t *testing.T) {
	m := NewManager(NewCatalog())
	if _, err := m.Materialize(NewContext(triple.NewGraph()), "ghost"); err == nil {
		t.Fatal("unknown view accepted")
	}
}
