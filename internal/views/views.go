// Package views implements KG view lifecycle management (§3.2): clients
// consume derived views of the KG rather than the raw graph, and the
// platform materializes those views when a new KG is constructed and
// incrementally maintains them as the KG changes. A view can be any
// transformation — subgraph, schematized relational view, aggregate, or an
// iterative computation like PageRank or embeddings. View definitions are
// scripted against their target engine's native API and registered in a
// central catalog alongside their dependencies; the View Manager executes the
// dependency DAG, reusing shared ancestor views across dependents (the
// multi-query optimization that yielded the paper's 26% run-time
// improvement).
package views

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"saga/internal/triple"
)

// Context is passed to view procedures: it carries the KG snapshot the run
// observes and the artifact space where views publish their outputs for
// dependents and external consumers. Artifacts are the cross-engine
// intermediate results of Figure 7 (an analytics-engine view consumed by the
// embedding trainer, for example); the Manager owns their lifecycle.
type Context struct {
	// Graph is the KG snapshot for this run. Snapshots are copy-on-write
	// (triple.Graph.Snapshot is O(shards)), so taking one per materialization
	// run is cheap even on a large KG; view procedures should read it through
	// the clone-free paths (GetShared, RangeShared) and never mutate the
	// entities those return.
	Graph *triple.Graph

	mu        sync.RWMutex
	artifacts map[string]any
}

// NewContext builds a run context over a graph snapshot.
func NewContext(g *triple.Graph) *Context {
	return &Context{Graph: g, artifacts: make(map[string]any)}
}

// SetArtifact publishes a view's output under its name.
func (c *Context) SetArtifact(name string, v any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.artifacts[name] = v
}

// Artifact retrieves a published output.
func (c *Context) Artifact(name string) (any, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	v, ok := c.artifacts[name]
	return v, ok
}

// DropArtifact removes an intermediate artifact once all dependents consumed
// it.
func (c *Context) DropArtifact(name string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	delete(c.artifacts, name)
}

// Definition registers one view: its procedures, dependencies, and freshness
// SLA. Create fully materializes; Update incrementally maintains given the
// changed entity IDs (nil Update falls back to Create); Drop releases
// engine-side state.
type Definition struct {
	// Name uniquely identifies the view in the catalog.
	Name string
	// Engine names the target storage engine (documentation and routing).
	Engine string
	// DependsOn lists views whose artifacts this view consumes.
	DependsOn []string
	// FreshnessSLA is the staleness bound the manager aims for; zero means
	// best-effort.
	FreshnessSLA time.Duration
	// Create fully materializes the view.
	Create func(ctx *Context) error
	// Update incrementally maintains the view for the changed entities.
	Update func(ctx *Context, changed []triple.EntityID) error
	// Drop releases the view's engine-side state.
	Drop func(ctx *Context) error
}

// Catalog is the central registry of view definitions and dependencies.
type Catalog struct {
	mu   sync.RWMutex
	defs map[string]Definition
}

// NewCatalog constructs an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{defs: make(map[string]Definition)}
}

// Register adds a definition, validating the name, the Create procedure, and
// that dependencies resolve without cycles.
func (c *Catalog) Register(def Definition) error {
	if def.Name == "" {
		return fmt.Errorf("views: definition has no name")
	}
	if def.Create == nil {
		return fmt.Errorf("views: view %s has no Create procedure", def.Name)
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if _, dup := c.defs[def.Name]; dup {
		return fmt.Errorf("views: view %s already registered", def.Name)
	}
	for _, dep := range def.DependsOn {
		if _, ok := c.defs[dep]; !ok {
			return fmt.Errorf("views: view %s depends on unregistered %s", def.Name, dep)
		}
	}
	// Dependencies must already exist, so cycles are impossible by
	// construction; registration order is the topological order.
	c.defs[def.Name] = def
	return nil
}

// Get returns a definition by name.
func (c *Catalog) Get(name string) (Definition, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	d, ok := c.defs[name]
	return d, ok
}

// Names lists registered views, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	out := make([]string, 0, len(c.defs))
	for n := range c.defs {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// topoOrder returns the requested views plus their transitive dependencies in
// dependency-first order.
func (c *Catalog) topoOrder(roots []string) ([]string, error) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	var order []string
	state := make(map[string]int) // 0 unvisited, 1 visiting, 2 done
	var visit func(name string) error
	visit = func(name string) error {
		switch state[name] {
		case 2:
			return nil
		case 1:
			return fmt.Errorf("views: dependency cycle through %s", name)
		}
		def, ok := c.defs[name]
		if !ok {
			return fmt.Errorf("views: unknown view %s", name)
		}
		state[name] = 1
		deps := append([]string(nil), def.DependsOn...)
		sort.Strings(deps)
		for _, dep := range deps {
			if err := visit(dep); err != nil {
				return err
			}
		}
		state[name] = 2
		order = append(order, name)
		return nil
	}
	sorted := append([]string(nil), roots...)
	sort.Strings(sorted)
	for _, r := range sorted {
		if err := visit(r); err != nil {
			return nil, err
		}
	}
	return order, nil
}

// RunStats reports what a manager run executed.
type RunStats struct {
	// Materialized lists the views evaluated, in execution order.
	Materialized []string
	// Reused counts dependency evaluations avoided by sharing.
	Reused int
	// Duration is the wall-clock run time.
	Duration time.Duration
}

// Manager coordinates view execution over the catalog.
type Manager struct {
	Catalog *Catalog
}

// NewManager wires a manager over a catalog.
func NewManager(c *Catalog) *Manager { return &Manager{Catalog: c} }

// Materialize evaluates the named views and their dependencies in dependency
// order, evaluating every shared ancestor exactly once (multi-query
// optimization via common-view reuse).
func (m *Manager) Materialize(ctx *Context, names ...string) (RunStats, error) {
	start := time.Now()
	order, err := m.Catalog.topoOrder(names)
	if err != nil {
		return RunStats{}, err
	}
	var stats RunStats
	for _, name := range order {
		def, _ := m.Catalog.Get(name)
		if err := def.Create(ctx); err != nil {
			return stats, fmt.Errorf("views: create %s: %w", name, err)
		}
		stats.Materialized = append(stats.Materialized, name)
	}
	// Reuse accounting: total dependency evaluations a naive per-sink run
	// would perform, minus what we actually ran.
	naive := 0
	for _, name := range names {
		chain, err := m.Catalog.topoOrder([]string{name})
		if err != nil {
			return stats, err
		}
		naive += len(chain)
	}
	stats.Reused = naive - len(order)
	stats.Duration = time.Since(start)
	return stats, nil
}

// MaterializeNoReuse evaluates each named view's full dependency chain
// independently, recomputing shared ancestors per sink. It is the ablation
// baseline quantifying the 26% reuse improvement.
func (m *Manager) MaterializeNoReuse(ctx *Context, names ...string) (RunStats, error) {
	start := time.Now()
	var stats RunStats
	for _, name := range names {
		chain, err := m.Catalog.topoOrder([]string{name})
		if err != nil {
			return stats, err
		}
		for _, dep := range chain {
			def, _ := m.Catalog.Get(dep)
			if err := def.Create(ctx); err != nil {
				return stats, fmt.Errorf("views: create %s: %w", dep, err)
			}
			stats.Materialized = append(stats.Materialized, dep)
		}
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// Refresh incrementally maintains the named views (and dependencies) for the
// changed entities, falling back to full materialization for views without
// an Update procedure.
func (m *Manager) Refresh(ctx *Context, changed []triple.EntityID, names ...string) (RunStats, error) {
	start := time.Now()
	order, err := m.Catalog.topoOrder(names)
	if err != nil {
		return RunStats{}, err
	}
	var stats RunStats
	for _, name := range order {
		def, _ := m.Catalog.Get(name)
		if def.Update != nil {
			if err := def.Update(ctx, changed); err != nil {
				return stats, fmt.Errorf("views: update %s: %w", name, err)
			}
		} else if err := def.Create(ctx); err != nil {
			return stats, fmt.Errorf("views: create %s: %w", name, err)
		}
		stats.Materialized = append(stats.Materialized, name)
	}
	stats.Duration = time.Since(start)
	return stats, nil
}

// Drop releases the named view and clears its artifact.
func (m *Manager) Drop(ctx *Context, name string) error {
	def, ok := m.Catalog.Get(name)
	if !ok {
		return fmt.Errorf("views: unknown view %s", name)
	}
	if def.Drop != nil {
		if err := def.Drop(ctx); err != nil {
			return fmt.Errorf("views: drop %s: %w", name, err)
		}
	}
	ctx.DropArtifact(name)
	return nil
}
