package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"net/url"
	"strings"
	"sync"
	"testing"
	"time"

	"saga/internal/core"
	"saga/internal/ingest"
	"saga/internal/serve"
	"saga/internal/triple"
	"saga/internal/workload"
)

// testServer assembles a replicated platform seeded from synthetic sources
// and wraps the serving tier in an httptest server.
func testServer(t *testing.T, replicas int) (*core.Platform, *httptest.Server) {
	t.Helper()
	p, err := core.Open(core.Options{Serving: core.ServingOptions{LiveReplicas: replicas}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	for s := 0; s < 2; s++ {
		spec := workload.SourceSpec{
			Name: fmt.Sprintf("src%02d", s), Offset: s * 40, Count: 80,
			Seed: int64(s + 1), RichFacts: 2,
		}
		if _, err := p.ConsumeDelta(spec.Delta()); err != nil {
			t.Fatal(err)
		}
	}
	p.RefreshServing()
	ts := httptest.NewServer(serve.New(p, serve.Options{}).Handler())
	t.Cleanup(ts.Close)
	return p, ts
}

// get issues a GET and returns the status plus decoded JSON body.
func get(t *testing.T, rawURL string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(rawURL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("GET %s: non-JSON body: %v", rawURL, err)
	}
	return resp.StatusCode, body
}

// errCode digs the code out of the error envelope, failing on any other shape.
func errCode(t *testing.T, body map[string]any) string {
	t.Helper()
	env, ok := body["error"].(map[string]any)
	if !ok {
		t.Fatalf("error response lacks the envelope: %v", body)
	}
	code, _ := env["code"].(string)
	if code == "" || env["message"] == "" {
		t.Fatalf("envelope missing code/message: %v", body)
	}
	return code
}

func TestQueryRoute(t *testing.T) {
	_, ts := testServer(t, 2)
	q := url.QueryEscape(`entity(type="human") | rank() | limit(3) | attr("name")`)
	status, body := get(t, ts.URL+"/v1/query?q="+q)
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, body)
	}
	if n := len(body["ids"].([]any)); n != 3 {
		t.Fatalf("ids = %d, want 3", n)
	}
	if n := len(body["values"].([]any)); n != 3 {
		t.Fatalf("values = %d, want 3", n)
	}
	if body["version"].(float64) <= 0 {
		t.Fatal("missing snapshot version")
	}
}

func TestQueryEmptyResultIsJSONArray(t *testing.T) {
	_, ts := testServer(t, 1)
	status, body := get(t, ts.URL+"/v1/query?q="+url.QueryEscape(`entity(type="nonesuch")`))
	if status != http.StatusOK {
		t.Fatalf("status = %d", status)
	}
	if ids, ok := body["ids"].([]any); !ok || len(ids) != 0 {
		t.Fatalf("empty result must encode as [], got %v", body["ids"])
	}
}

func TestQueryErrors(t *testing.T) {
	_, ts := testServer(t, 1)
	for _, tc := range []struct {
		name, url, code string
		status          int
	}{
		{"bad KGQ", "/v1/query?q=" + url.QueryEscape(`teleport("mars")`), "bad_query", http.StatusBadRequest},
		{"unparsable KGQ", "/v1/query?q=" + url.QueryEscape(`entity(`), "bad_query", http.StatusBadRequest},
		{"missing q", "/v1/query", "bad_request", http.StatusBadRequest},
		{"unknown param", "/v1/query?q=x&limit=5", "bad_request", http.StatusBadRequest},
	} {
		status, body := get(t, ts.URL+tc.url)
		if status != tc.status {
			t.Fatalf("%s: status = %d, want %d", tc.name, status, tc.status)
		}
		if code := errCode(t, body); code != tc.code {
			t.Fatalf("%s: code = %q, want %q", tc.name, code, tc.code)
		}
	}
}

func TestEntityRoute(t *testing.T) {
	p, ts := testServer(t, 2)
	ids := p.Live.Current().ByType("human")
	if len(ids) == 0 {
		t.Fatal("seed produced no humans")
	}
	status, body := get(t, ts.URL+"/v1/entity?id="+url.QueryEscape(string(ids[0])))
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, body)
	}
	if body["id"] != string(ids[0]) {
		t.Fatalf("entity payload id = %v, want %s", body["id"], ids[0])
	}

	status, body = get(t, ts.URL+"/v1/entity?id=kg:never-constructed")
	if status != http.StatusNotFound {
		t.Fatalf("missing entity: status = %d", status)
	}
	if code := errCode(t, body); code != "not_found" {
		t.Fatalf("missing entity: code = %q", code)
	}

	status, body = get(t, ts.URL+"/v1/entity")
	if status != http.StatusBadRequest || errCode(t, body) != "bad_request" {
		t.Fatalf("missing id: status = %d body = %v", status, body)
	}
}

func TestSearchRoute(t *testing.T) {
	p, ts := testServer(t, 1)
	ids := p.Live.Current().ByType("human")
	name := p.Live.Current().GetShared(ids[0]).Name()
	status, body := get(t, ts.URL+"/v1/search?q="+url.QueryEscape(name)+"&k=3")
	if status != http.StatusOK {
		t.Fatalf("status = %d: %v", status, body)
	}
	hits := body["hits"].([]any)
	if len(hits) == 0 || len(hits) > 3 {
		t.Fatalf("hits = %d, want 1..3", len(hits))
	}
	top := hits[0].(map[string]any)
	if top["id"] == "" || top["score"].(float64) <= 0 {
		t.Fatalf("malformed hit: %v", top)
	}

	for _, bad := range []string{"k=0", "k=-2", "k=three"} {
		status, body = get(t, ts.URL+"/v1/search?q=x&"+bad)
		if status != http.StatusBadRequest || errCode(t, body) != "bad_request" {
			t.Fatalf("%s: status = %d body = %v", bad, status, body)
		}
	}
}

func TestMethodNotAllowed(t *testing.T) {
	_, ts := testServer(t, 1)
	for _, route := range []string{"/v1/query", "/v1/entity", "/v1/search", "/v1/stats", "/v1/healthz"} {
		resp, err := http.Post(ts.URL+route, "application/json", strings.NewReader("{}"))
		if err != nil {
			t.Fatal(err)
		}
		var body map[string]any
		_ = json.NewDecoder(resp.Body).Decode(&body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("POST %s: status = %d", route, resp.StatusCode)
		}
		if allow := resp.Header.Get("Allow"); allow != http.MethodGet {
			t.Fatalf("POST %s: Allow = %q", route, allow)
		}
		if code := errCode(t, body); code != "method_not_allowed" {
			t.Fatalf("POST %s: code = %q", route, code)
		}
	}
	// Admin mutations are POST-only; GET must bounce the same way.
	for _, route := range []string{"/v1/admin/checkpoint", "/v1/admin/compact"} {
		status, body := get(t, ts.URL+route)
		if status != http.StatusMethodNotAllowed {
			t.Fatalf("GET %s: status = %d", route, status)
		}
		if code := errCode(t, body); code != "method_not_allowed" {
			t.Fatalf("GET %s: code = %q", route, code)
		}
	}
}

// post issues a POST with an empty body and returns status plus decoded JSON.
func post(t *testing.T, rawURL string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Post(rawURL, "application/json", nil)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("POST %s: non-JSON body: %v", rawURL, err)
	}
	return resp.StatusCode, body
}

// TestAdminRoutes drives the durability admin surface over a platform with a
// durable checkpoint store: two checkpoints establish a compaction floor,
// compaction reports a rewrite, and the recovery stats reflect all of it.
func TestAdminRoutes(t *testing.T) {
	p, err := core.Open(core.Options{Durability: core.DurabilityOptions{Dir: t.TempDir()}})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { p.Close() })
	ts := httptest.NewServer(serve.New(p, serve.Options{}).Handler())
	t.Cleanup(ts.Close)

	for round := 0; round < 2; round++ {
		spec := workload.SourceSpec{Name: "src", Count: 30, Offset: round * 5, Seed: int64(round + 1), RichFacts: 2}
		if _, err := p.ConsumeDelta(spec.Delta()); err != nil {
			t.Fatal(err)
		}
		status, body := post(t, ts.URL+"/v1/admin/checkpoint")
		if status != http.StatusOK {
			t.Fatalf("checkpoint round %d: status = %d body = %v", round, status, body)
		}
		if body["durable"] != true || body["checkpoint_lsn"].(float64) <= 0 {
			t.Fatalf("checkpoint round %d: body = %v", round, body)
		}
	}

	status, body := post(t, ts.URL+"/v1/admin/compact")
	if status != http.StatusOK {
		t.Fatalf("compact: status = %d body = %v", status, body)
	}
	if body["ran"] != true || body["watermark"].(float64) <= 0 {
		t.Fatalf("compact did not run: %v", body)
	}

	status, body = get(t, ts.URL+"/v1/admin/recovery")
	if status != http.StatusOK {
		t.Fatalf("recovery: status = %d", status)
	}
	if body["durable"] != true {
		t.Fatalf("recovery stats not durable: %v", body)
	}
	if body["checkpoints"].(float64) != 2 {
		t.Fatalf("recovery checkpoints = %v, want 2", body["checkpoints"])
	}
	if body["compactions"].(float64) < 1 {
		t.Fatalf("recovery compactions = %v, want >= 1", body["compactions"])
	}
	if body["compaction_floor"].(float64) <= 0 {
		t.Fatalf("recovery floor = %v, want > 0", body["compaction_floor"])
	}
}

// TestAdminCheckpointVolatile: on a platform with no durable checkpoint
// store the route still succeeds — views refresh — but reports durable:false.
func TestAdminCheckpointVolatile(t *testing.T) {
	_, ts := testServer(t, 1)
	status, body := post(t, ts.URL+"/v1/admin/checkpoint")
	if status != http.StatusOK {
		t.Fatalf("status = %d body = %v", status, body)
	}
	if body["durable"] != false {
		t.Fatalf("volatile platform reported durable: %v", body)
	}
}

func TestStatsAndHealthz(t *testing.T) {
	_, ts := testServer(t, 3)
	status, body := get(t, ts.URL+"/v1/healthz")
	if status != http.StatusOK || body["status"] != "ok" || body["version"].(float64) <= 0 {
		t.Fatalf("healthz: status = %d body = %v", status, body)
	}
	status, body = get(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: status = %d", status)
	}
	serving := body["serving"].(map[string]any)
	if serving["replicas"].(float64) != 3 {
		t.Fatalf("stats replicas = %v, want 3", serving["replicas"])
	}
	if _, ok := body["platform"].(map[string]any); !ok {
		t.Fatal("stats missing platform section")
	}
}

func TestRequestTimeoutEnvelope(t *testing.T) {
	p, err := core.Open(core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	// A timeout so small every request trips it: the 503 must still carry
	// the JSON envelope.
	ts := httptest.NewServer(serve.New(p, serve.Options{RequestTimeout: time.Nanosecond}).Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status = %d, want 503", resp.StatusCode)
	}
	var body map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatalf("timeout body is not JSON: %v", err)
	}
	env := body["error"].(map[string]any)
	if env["code"] != "timeout" {
		t.Fatalf("timeout code = %v", env["code"])
	}
}

// TestConcurrentQueriesUnderFeed drives concurrent mixed traffic through
// the server while a standing feed churns volatile facts and a streaming
// writer updates live entities — the full serving-under-ingestion path,
// meaningful chiefly under -race.
func TestConcurrentQueriesUnderFeed(t *testing.T) {
	p, ts := testServer(t, 3)
	view := p.Live.Current()
	ids := view.ByType("human")
	name := view.GetShared(ids[0]).Name()

	stop := make(chan struct{})
	var ingestWG sync.WaitGroup
	feed, err := p.Feed(core.FeedOptions{})
	if err != nil {
		t.Fatal(err)
	}
	ingestWG.Add(1)
	go func() {
		defer ingestWG.Done()
		rng := rand.New(rand.NewSource(7))
		for {
			select {
			case <-stop:
				return
			case <-time.After(2 * time.Millisecond):
			}
			churn := make([]*triple.Entity, 0, 8)
			for u := 0; u < 8; u++ {
				e := triple.NewEntity(triple.EntityID(fmt.Sprintf("src00:e%d", rng.Intn(80))))
				e.Add(triple.New("", "popularity", triple.Float(rng.Float64())).WithSource("src00", 0.9))
				churn = append(churn, e)
			}
			<-feed.Submit([]ingest.Delta{{Source: "src00", Volatile: churn}})
		}
	}()

	urls := []string{
		ts.URL + "/v1/query?q=" + url.QueryEscape(`entity(type="human") | rank() | limit(5) | attr("name")`),
		ts.URL + "/v1/query?q=" + url.QueryEscape(fmt.Sprintf(`entity(type="human", name=%q)`, name)),
		ts.URL + "/v1/entity?id=" + url.QueryEscape(string(ids[0])),
		ts.URL + "/v1/search?q=" + url.QueryEscape(name) + "&k=5",
		ts.URL + "/v1/stats",
	}
	var wg sync.WaitGroup
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for i := 0; i < 30; i++ {
				u := urls[(c+i)%len(urls)]
				resp, err := client.Get(u)
				if err != nil {
					t.Error(err)
					return
				}
				if resp.StatusCode != http.StatusOK {
					body, _ := io.ReadAll(resp.Body)
					resp.Body.Close()
					t.Errorf("%s -> %d: %s", u, resp.StatusCode, body)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
		}(c)
	}
	wg.Wait()
	close(stop)
	ingestWG.Wait()
	_ = feed.Close()
	feed.Drain()

	served := p.Replicas.Served()
	var total uint64
	for _, n := range served {
		total += n
	}
	if total == 0 {
		t.Fatal("no reads were routed through the replica set")
	}
}
