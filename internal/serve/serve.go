// Package serve implements Saga's production serving tier (§4): a
// constructor-injected HTTP server over an assembled platform, exposing the
// live knowledge graph on versioned /v1 routes. Query reads run against
// immutable store snapshots routed across the live replica set, KGQ text
// compiles once through a plan cache shared by every replica's engine, and
// results are cached per (plan, store version) so hot queries invalidate
// exactly when ingestion advances the KG.
//
// Routes:
//
//	GET  /v1/query?q=<KGQ>         execute a live graph query
//	GET  /v1/entity?id=<id>        retrieve an entity payload
//	GET  /v1/search?q=<text>&k=<n> ranked text search (k defaults to 10)
//	GET  /v1/stats                 platform + serving statistics
//	GET  /v1/healthz               liveness and current store version
//	POST /v1/admin/checkpoint      take a durable checkpoint + refresh views
//	POST /v1/admin/compact         compact the log through the checkpoint floor
//	GET  /v1/admin/recovery        recovery, checkpoint, and compaction stats
//
// Errors use a structured envelope: {"error": {"code": "...", "message":
// "..."}} with codes bad_query, bad_request, not_found, internal, and
// method_not_allowed. Admin routes run under the same request timeout as
// reads; a checkpoint or compaction that outlives it keeps running — the
// timeout bounds the response, not the operation.
package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"strconv"
	"time"

	"saga/internal/core"
	"saga/internal/live"
	"saga/internal/live/kgq"
	"saga/internal/triple"
)

// Options configures a Server.
type Options struct {
	// Addr is the listen address; default 127.0.0.1:8080.
	Addr string
	// RequestTimeout bounds each request's handling time; default 5s.
	RequestTimeout time.Duration
	// ReadHeaderTimeout bounds how long a client may dribble request
	// headers; default 5s.
	ReadHeaderTimeout time.Duration
	// PlanCacheSize bounds the plan cache shared across replica engines;
	// 0 means the kgq default.
	PlanCacheSize int
}

// Server serves the live KG over HTTP. Construct with New; the zero value
// is not usable.
type Server struct {
	platform *core.Platform
	replicas *live.ReplicaSet
	// engines holds one query engine per replica, all sharing one plan
	// cache: a hot query text compiles once for the whole set, while each
	// engine keeps its own result cache keyed on its replica's versions.
	engines map[*live.Store]*kgq.Engine
	plans   *kgq.PlanCache
	opts    Options
	handler http.Handler
	srv     *http.Server
}

// New builds a server over an assembled platform.
func New(p *core.Platform, opts Options) *Server {
	if opts.Addr == "" {
		opts.Addr = "127.0.0.1:8080"
	}
	if opts.RequestTimeout <= 0 {
		opts.RequestTimeout = 5 * time.Second
	}
	if opts.ReadHeaderTimeout <= 0 {
		opts.ReadHeaderTimeout = 5 * time.Second
	}
	s := &Server{
		platform: p,
		replicas: p.Replicas,
		engines:  make(map[*live.Store]*kgq.Engine),
		plans:    kgq.NewPlanCache(opts.PlanCacheSize),
		opts:     opts,
	}
	if s.replicas != nil {
		for i := 0; i < s.replicas.Size(); i++ {
			st := s.replicas.Replica(i)
			eng := kgq.NewEngine(st)
			eng.Plans = s.plans
			s.engines[st] = eng
		}
	} else {
		s.engines[p.Live] = p.LiveEngine
		s.plans = p.LiveEngine.Plans
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/query", s.handleQuery)
	mux.HandleFunc("/v1/entity", s.handleEntity)
	mux.HandleFunc("/v1/search", s.handleSearch)
	mux.HandleFunc("/v1/stats", s.handleStats)
	mux.HandleFunc("/v1/healthz", s.handleHealthz)
	mux.HandleFunc("/v1/admin/checkpoint", s.handleAdminCheckpoint)
	mux.HandleFunc("/v1/admin/compact", s.handleAdminCompact)
	mux.HandleFunc("/v1/admin/recovery", s.handleAdminRecovery)
	s.handler = http.TimeoutHandler(mux, opts.RequestTimeout,
		`{"error":{"code":"timeout","message":"request exceeded the server's request timeout"}}`)
	return s
}

// Handler returns the server's HTTP handler (method checks, envelopes, and
// the request timeout included) for embedding in tests and benchmarks.
func (s *Server) Handler() http.Handler { return s.handler }

// ListenAndServe serves until the listener fails or Shutdown is called.
func (s *Server) ListenAndServe() error {
	s.srv = &http.Server{
		Addr:              s.opts.Addr,
		Handler:           s.handler,
		ReadHeaderTimeout: s.opts.ReadHeaderTimeout,
	}
	err := s.srv.ListenAndServe()
	if err == http.ErrServerClosed {
		return nil
	}
	return err
}

// Shutdown gracefully stops a running server.
func (s *Server) Shutdown(ctx context.Context) error {
	if s.srv == nil {
		return nil
	}
	return s.srv.Shutdown(ctx)
}

// route picks the replica to serve one read (health-, version-, and
// load-aware) and returns its engine, a snapshot pinned for the request,
// and the release that ends the read. The snapshot is the replica's Serving
// view: immutable, lock-free, and with bounded staleness under sustained
// ingestion, so request handling never republishes per request and never
// contends with writers.
func (s *Server) route() (*kgq.Engine, *live.Snapshot, func()) {
	if s.replicas == nil {
		eng := s.engines[s.platform.Live]
		return eng, s.platform.Live.Serving(), func() {}
	}
	st, release := s.replicas.RouteAcquire()
	return s.engines[st], st.Serving(), release
}

// errorEnvelope is the structured error body every non-2xx response carries.
type errorEnvelope struct {
	Error errorInfo `json:"error"`
}

type errorInfo struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

func writeError(w http.ResponseWriter, status int, code, msg string) {
	writeJSON(w, status, errorEnvelope{Error: errorInfo{Code: code, Message: msg}})
}

// checkRequest enforces a route's method and parameter contract: exactly the
// given method (405 with Allow otherwise), and no unknown query parameters
// (400) — a misspelled parameter fails loudly instead of silently serving the
// unfiltered route.
func checkRequest(w http.ResponseWriter, r *http.Request, method string, params ...string) bool {
	if r.Method != method {
		w.Header().Set("Allow", method)
		writeError(w, http.StatusMethodNotAllowed, "method_not_allowed",
			fmt.Sprintf("%s is not allowed; use %s", r.Method, method))
		return false
	}
	allowed := make(map[string]bool, len(params))
	for _, p := range params {
		allowed[p] = true
	}
	for name := range r.URL.Query() {
		if !allowed[name] {
			writeError(w, http.StatusBadRequest, "bad_request",
				fmt.Sprintf("unknown query parameter %q", name))
			return false
		}
	}
	return true
}

// queryResponse is /v1/query's success payload.
type queryResponse struct {
	IDs     []triple.EntityID `json:"ids"`
	Values  []string          `json:"values"`
	Version uint64            `json:"version"`
}

func (s *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet, "q") {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing required parameter q")
		return
	}
	eng, view, release := s.route()
	defer release()
	plan, err := eng.PlanText(q)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	res, err := eng.ExecuteOn(plan, view)
	if err != nil {
		writeError(w, http.StatusBadRequest, "bad_query", err.Error())
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []triple.EntityID{}
	}
	writeJSON(w, http.StatusOK, queryResponse{IDs: ids, Values: res.Texts(), Version: view.Version()})
}

func (s *Server) handleEntity(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet, "id") {
		return
	}
	id := r.URL.Query().Get("id")
	if id == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing required parameter id")
		return
	}
	_, view, release := s.route()
	defer release()
	// Shared record: stored entities are immutable after insert, so the
	// encoder reads it without a clone.
	e := view.GetShared(triple.EntityID(id))
	if e == nil {
		writeError(w, http.StatusNotFound, "not_found", fmt.Sprintf("entity %q is not in the live KG", id))
		return
	}
	writeJSON(w, http.StatusOK, e)
}

// searchResponse is /v1/search's success payload.
type searchResponse struct {
	Hits    []searchHit `json:"hits"`
	Version uint64      `json:"version"`
}

type searchHit struct {
	ID    string  `json:"id"`
	Score float64 `json:"score"`
}

func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet, "q", "k") {
		return
	}
	q := r.URL.Query().Get("q")
	if q == "" {
		writeError(w, http.StatusBadRequest, "bad_request", "missing required parameter q")
		return
	}
	k := 10
	if ks := r.URL.Query().Get("k"); ks != "" {
		n, err := strconv.Atoi(ks)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "bad_request", "parameter k must be a positive integer")
			return
		}
		k = n
	}
	_, view, release := s.route()
	defer release()
	hits := view.SearchText(q, k)
	out := searchResponse{Hits: make([]searchHit, len(hits)), Version: view.Version()}
	for i, h := range hits {
		out.Hits[i] = searchHit{ID: h.ID, Score: h.Score}
	}
	writeJSON(w, http.StatusOK, out)
}

// ServingStats reports the serving tier's own counters next to platform
// statistics on /v1/stats.
type ServingStats struct {
	// Version is the primary replica's current store version.
	Version uint64 `json:"version"`
	// Replicas is the serving replica count.
	Replicas int `json:"replicas"`
	// ReplicaServed counts reads completed per replica (routing balance).
	ReplicaServed []uint64 `json:"replica_served,omitempty"`
	// PlanCacheLen is the number of compiled plans cached across replicas.
	PlanCacheLen int `json:"plan_cache_len"`
	// ResultHits / ResultMisses aggregate result-cache traffic.
	ResultHits   uint64 `json:"result_hits"`
	ResultMisses uint64 `json:"result_misses"`
}

type statsResponse struct {
	Platform core.Stats   `json:"platform"`
	Serving  ServingStats `json:"serving"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, statsResponse{Platform: s.platform.Stats(), Serving: s.servingStats()})
}

func (s *Server) servingStats() ServingStats {
	st := ServingStats{
		Version:      s.platform.Live.Version(),
		Replicas:     1,
		PlanCacheLen: s.plans.Len(),
	}
	if s.replicas != nil {
		st.Replicas = s.replicas.Size()
		st.ReplicaServed = s.replicas.Served()
	}
	for _, eng := range s.engines {
		h, m := eng.CacheStats()
		st.ResultHits += h
		st.ResultMisses += m
	}
	return st
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"status": "ok", "version": s.platform.Live.Version()})
}

// checkpointResponse is /v1/admin/checkpoint's success payload.
type checkpointResponse struct {
	// Durable reports whether the checkpoint was persisted (false on a
	// platform with no durable checkpoint store — views still refreshed).
	Durable bool `json:"durable"`
	// CheckpointLSN is the watermark of the newest durable checkpoint.
	CheckpointLSN uint64 `json:"checkpoint_lsn"`
	// ViewsMaterialized lists the views refreshed in execution order.
	ViewsMaterialized []string `json:"views_materialized"`
}

func (s *Server) handleAdminCheckpoint(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodPost) {
		return
	}
	run, err := s.platform.Checkpoint()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	st := s.platform.DurabilityStats()
	writeJSON(w, http.StatusOK, checkpointResponse{
		Durable:           st.Durable,
		CheckpointLSN:     st.LastCheckpointLSN,
		ViewsMaterialized: run.Materialized,
	})
}

// compactResponse is /v1/admin/compact's success payload.
type compactResponse struct {
	// Ran reports whether a compaction actually ran; false means the
	// platform has no safe compaction floor yet (fewer than two checkpoints
	// this session).
	Ran bool `json:"ran"`
	// Watermark is the LSN the compaction conflated through; the remaining
	// fields count what the rewrite kept and elided.
	Watermark    uint64 `json:"watermark"`
	OpsBefore    int    `json:"ops_before"`
	OpsAfter     int    `json:"ops_after"`
	EntitiesKept int    `json:"entities_kept"`
	Tombstoned   int    `json:"tombstoned"`
	LinksKept    int    `json:"links_kept"`
	LinksElided  int    `json:"links_elided"`
}

func (s *Server) handleAdminCompact(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodPost) {
		return
	}
	stats, err := s.platform.Compact()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "internal", err.Error())
		return
	}
	writeJSON(w, http.StatusOK, compactResponse{
		Ran:          stats.Watermark > 0,
		Watermark:    stats.Watermark,
		OpsBefore:    stats.OpsBefore,
		OpsAfter:     stats.OpsAfter,
		EntitiesKept: stats.EntitiesKept,
		Tombstoned:   stats.Tombstoned,
		LinksKept:    stats.LinksKept,
		LinksElided:  stats.LinksElided,
	})
}

func (s *Server) handleAdminRecovery(w http.ResponseWriter, r *http.Request) {
	if !checkRequest(w, r, http.MethodGet) {
		return
	}
	writeJSON(w, http.StatusOK, s.platform.DurabilityStats())
}
