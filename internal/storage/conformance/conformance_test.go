package conformance

import (
	"testing"

	_ "saga/internal/storage/disk"
	_ "saga/internal/storage/memory"
)

func TestMemoryBackend(t *testing.T) { Suite{Backend: "memory"}.Run(t) }

func TestDiskBackend(t *testing.T) { Suite{Backend: "disk"}.Run(t) }
