// Package conformance is the shared contract test for storage backends:
// every backend registered with the storage package must pass the same
// suite, so the platform's correctness never depends on which backend is
// resolved. The suite covers round trips for all five roles, concurrent
// reader safety (meaningful under -race), and — for durable backends —
// kill-and-reopen recovery with a torn final record plus a large-payload
// test asserting that payload bytes stay off the Go heap.
package conformance

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"saga/internal/storage"
)

// Suite runs the backend contract against one named backend.
type Suite struct {
	// Backend is the registered backend name ("memory", "disk").
	Backend string
}

// open resolves a fresh handle rooted at dir.
func (s Suite) open(t testing.TB, dir string) storage.Handle {
	t.Helper()
	h, err := storage.Resolve(s.Backend, storage.Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	return h
}

// tearNewestFile simulates a crash mid-append: it truncates a few bytes off
// the most recently modified file under dir. Every durable role writes
// CRC-framed records, so this tears exactly the final record.
func tearNewestFile(t *testing.T, dir string) {
	t.Helper()
	var newest string
	var newestMod int64
	err := filepath.Walk(dir, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		if !info.Mode().IsRegular() || info.Size() == 0 {
			return nil
		}
		// Manifests are published by atomic rename, never torn by a crash
		// mid-append; tear the newest data file instead.
		if filepath.Base(path) == "MANIFEST" {
			return nil
		}
		if mod := info.ModTime().UnixNano(); newest == "" || mod >= newestMod {
			newest, newestMod = path, mod
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if newest == "" {
		t.Fatal("no file to tear under " + dir)
	}
	info, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, info.Size()-3); err != nil {
		t.Fatal(err)
	}
}

// Run executes the full contract as subtests.
func (s Suite) Run(t *testing.T) {
	h, err := storage.Resolve(s.Backend, storage.Options{})
	if err != nil {
		t.Fatal(err)
	}
	durable := h.Durable()
	t.Run("RecordLog", func(t *testing.T) { s.recordLog(t, durable) })
	t.Run("RecordLogCompact", func(t *testing.T) { s.recordLogCompact(t, durable) })
	t.Run("BlobStore", func(t *testing.T) { s.blobStore(t, durable) })
	t.Run("EntityKV", func(t *testing.T) { s.entityKV(t, durable) })
	t.Run("Postings", func(t *testing.T) { s.postings(t) })
	t.Run("Vectors", func(t *testing.T) { s.vectors(t) })
	t.Run("Checkpoints", func(t *testing.T) { s.checkpoints(t, durable) })
	if durable {
		t.Run("RecordLogTornTail", func(t *testing.T) { s.recordLogTornTail(t) })
		t.Run("RecordLogCompactCrash", func(t *testing.T) { s.recordLogCompactCrash(t) })
		t.Run("BlobStoreTornTail", func(t *testing.T) { s.blobStoreTornTail(t) })
		t.Run("EntityKVTornTail", func(t *testing.T) { s.entityKVTornTail(t) })
		t.Run("EntityKVLargePayloadOffHeap", func(t *testing.T) { s.entityKVOffHeap(t) })
		t.Run("CheckpointsCrash", func(t *testing.T) { s.checkpointsCrash(t) })
	}
}

// recordLogCompact exercises the atomic-prefix-replacement contract: the
// prefix shrinks to the replacement, the suffix survives unchanged, appends
// continue, and (durable backends) the compacted state survives reopen.
func (s Suite) recordLogCompact(t *testing.T, durable bool) {
	dir := t.TempDir()
	l, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := l.Append([]byte(fmt.Sprintf("old-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(7, [][]byte{[]byte("compacted-a"), []byte("compacted-b")}); err != nil {
		t.Fatal(err)
	}
	want := []string{"compacted-a", "compacted-b", "old-07", "old-08", "old-09"}
	check := func(l storage.RecordLog, want []string) {
		t.Helper()
		if got := l.Len(); got != len(want) {
			t.Fatalf("Len = %d, want %d", got, len(want))
		}
		var got []string
		if err := l.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
			}
		}
	}
	check(l, want)
	// Appends continue after a compaction.
	if err := l.Append([]byte("post-compact")); err != nil {
		t.Fatal(err)
	}
	// Compacting everything (tombstone elision can empty a prefix).
	if err := l.Compact(6, nil); err != nil {
		t.Fatal(err)
	}
	if got := l.Len(); got != 0 {
		t.Fatalf("Len after full compact = %d, want 0", got)
	}
	if err := l.Append([]byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := l.Compact(99, nil); err == nil {
		t.Fatal("out-of-range drop accepted")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if durable {
		re, err := s.open(t, dir).RecordLog()
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		check(re, []string{"fresh"})
		if err := re.Append([]byte("after-reopen")); err != nil {
			t.Fatal(err)
		}
	}
}

// recordLogCompactCrash asserts compaction atomicity across a simulated
// crash: copying the directory at an arbitrary moment after Compact returns
// and reopening the copy must yield exactly the compacted log — and tearing
// the newest file still leaves a log that opens (the swap is manifest-
// guarded, so damage degrades to torn-tail recovery, never a half-swapped
// prefix).
func (s Suite) recordLogCompactCrash(t *testing.T) {
	dir := t.TempDir()
	l, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r-%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Compact(5, [][]byte{[]byte("c-0")}); err != nil {
		t.Fatal(err)
	}
	// Crash immediately after compact: no Close, reopen the same dir.
	re, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	var got []string
	if err := re.Replay(func(p []byte) error { got = append(got, string(p)); return nil }); err != nil {
		t.Fatal(err)
	}
	if err := re.Close(); err != nil {
		t.Fatal(err)
	}
	want := []string{"c-0", "r-05", "r-06", "r-07"}
	if len(got) != len(want) {
		t.Fatalf("reopened records = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
	//saga:errok — l is the crash-simulated handle; re rewrote its files, this close only releases descriptors
	l.Close()
}

// checkpoints exercises the Checkpointer round trip: Latest returns the
// newest Save; durable backends survive reopen.
func (s Suite) checkpoints(t *testing.T, durable bool) {
	dir := t.TempDir()
	c, err := s.open(t, dir).Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if _, _, ok := c.Latest(); ok {
		t.Fatal("empty store reported a checkpoint")
	}
	if err := c.Save(10, []byte("snap-10")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(25, []byte("snap-25")); err != nil {
		t.Fatal(err)
	}
	lsn, payload, ok := c.Latest()
	if !ok || lsn != 25 || string(payload) != "snap-25" {
		t.Fatalf("Latest = %d, %q, %v", lsn, payload, ok)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if durable {
		re, err := s.open(t, dir).Checkpoints()
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		lsn, payload, ok := re.Latest()
		if !ok || lsn != 25 || string(payload) != "snap-25" {
			t.Fatalf("reopened Latest = %d, %q, %v", lsn, payload, ok)
		}
	}
}

// checkpointsCrash damages the newest checkpoint file and asserts Latest
// falls back to the previous intact one instead of failing or returning
// corrupt bytes.
func (s Suite) checkpointsCrash(t *testing.T) {
	dir := t.TempDir()
	c, err := s.open(t, dir).Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Save(10, []byte("snap-10")); err != nil {
		t.Fatal(err)
	}
	if err := c.Save(25, []byte("snap-25")); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestFile(t, dir)
	re, err := s.open(t, dir).Checkpoints()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	lsn, payload, ok := re.Latest()
	if !ok || lsn != 10 || string(payload) != "snap-10" {
		t.Fatalf("Latest after damage = %d, %q, %v (want fallback to 10)", lsn, payload, ok)
	}
}

func (s Suite) recordLog(t *testing.T, durable bool) {
	dir := t.TempDir()
	l, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	const n = 20
	for i := 0; i < n; i++ {
		if err := l.Append([]byte(fmt.Sprintf("record-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := l.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	var replayed []string
	if err := l.Replay(func(p []byte) error {
		replayed = append(replayed, string(p))
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if len(replayed) != n || replayed[0] != "record-000" || replayed[n-1] != fmt.Sprintf("record-%03d", n-1) {
		t.Fatalf("replayed %d records, first %q", len(replayed), replayed[0])
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Append([]byte("late")); err == nil {
		t.Fatal("append after close succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatalf("close not idempotent: %v", err)
	}
	if durable {
		re, err := s.open(t, dir).RecordLog()
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		if got := re.Len(); got != n {
			t.Fatalf("reopened Len = %d, want %d", got, n)
		}
	}
}

func (s Suite) recordLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := l.Append([]byte(fmt.Sprintf("r%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestFile(t, dir)
	re, err := s.open(t, dir).RecordLog()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Len(); got != 4 {
		t.Fatalf("Len after torn tail = %d, want 4", got)
	}
	// The log must accept appends after recovery and stay readable.
	if err := re.Append([]byte("r4-again")); err != nil {
		t.Fatal(err)
	}
	var last string
	if err := re.Replay(func(p []byte) error { last = string(p); return nil }); err != nil {
		t.Fatal(err)
	}
	if last != "r4-again" {
		t.Fatalf("last record = %q", last)
	}

	// A record the replay callback rejects is a torn tail too: the log
	// truncates it and everything after.
	if err := re.Replay(func(p []byte) error {
		if string(p) == "r3" {
			return fmt.Errorf("undecodable")
		}
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got := re.Len(); got != 3 {
		t.Fatalf("Len after rejected replay = %d, want 3", got)
	}
}

func (s Suite) blobStore(t *testing.T, durable bool) {
	dir := t.TempDir()
	b, err := s.open(t, dir).BlobStore()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 10)
	for i := range keys {
		k, err := b.Stage([]byte(fmt.Sprintf("payload-%03d", i)))
		if err != nil {
			t.Fatal(err)
		}
		keys[i] = k
	}
	if got := b.Len(); got != len(keys) {
		t.Fatalf("Len = %d, want %d", got, len(keys))
	}
	for i, k := range keys {
		got, ok := b.Get(k)
		if !ok || string(got) != fmt.Sprintf("payload-%03d", i) {
			t.Fatalf("Get(%s) = %q, %v", k, got, ok)
		}
	}
	if _, ok := b.Get("staging/99999999"); ok {
		t.Fatal("phantom blob")
	}
	if err := b.Delete(keys[0]); err != nil {
		t.Fatal(err)
	}
	if _, ok := b.Get(keys[0]); ok {
		t.Fatal("deleted blob still readable")
	}
	if got := b.Len(); got != len(keys)-1 {
		t.Fatalf("Len after delete = %d, want %d", got, len(keys)-1)
	}

	// Concurrent readers while a writer stages (meaningful under -race).
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 50; i++ {
				b.Get(keys[1+i%(len(keys)-1)])
			}
		}()
	}
	for i := 0; i < 20; i++ {
		if _, err := b.Stage([]byte("concurrent")); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()

	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	if durable {
		re, err := s.open(t, dir).BlobStore()
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		got, ok := re.Get(keys[3])
		if !ok || string(got) != "payload-003" {
			t.Fatalf("reopened Get = %q, %v", got, ok)
		}
		if _, ok := re.Get(keys[0]); ok {
			t.Fatal("delete did not survive reopen")
		}
		// The key sequence must resume past retained blobs, never reuse.
		k, err := re.Stage([]byte("after-reopen"))
		if err != nil {
			t.Fatal(err)
		}
		for _, old := range keys {
			if k == old {
				t.Fatalf("reopened store reissued key %s", k)
			}
		}
	}
}

func (s Suite) blobStoreTornTail(t *testing.T) {
	dir := t.TempDir()
	b, err := s.open(t, dir).BlobStore()
	if err != nil {
		t.Fatal(err)
	}
	keys := make([]string, 5)
	for i := range keys {
		if keys[i], err = b.Stage([]byte(fmt.Sprintf("blob-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := b.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestFile(t, dir)
	re, err := s.open(t, dir).BlobStore()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok := re.Get(keys[4]); ok {
		t.Fatal("torn final blob still readable")
	}
	for i := 0; i < 4; i++ {
		got, ok := re.Get(keys[i])
		if !ok || string(got) != fmt.Sprintf("blob-%d", i) {
			t.Fatalf("blob %d lost to tear: %q, %v", i, got, ok)
		}
	}
	if _, err := re.Stage([]byte("post-recovery")); err != nil {
		t.Fatal(err)
	}
}

func (s Suite) entityKV(t *testing.T, durable bool) {
	dir := t.TempDir()
	kv, err := s.open(t, dir).EntityKV()
	if err != nil {
		t.Fatal(err)
	}
	const n = 100
	for i := 0; i < n; i++ {
		if err := kv.Put(fmt.Sprintf("kg:E%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite must replace, not append a second live version.
	if err := kv.Put("kg:E0", []byte("v0-new")); err != nil {
		t.Fatal(err)
	}
	if got := kv.Len(); got != n {
		t.Fatalf("Len = %d, want %d", got, n)
	}
	v, ok, err := kv.Get("kg:E0")
	if err != nil || !ok || string(v) != "v0-new" {
		t.Fatalf("Get = %q, %v, %v", v, ok, err)
	}
	if _, ok, err := kv.Get("kg:nope"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("phantom key")
	}
	vals, err := kv.MultiGet([]string{"kg:E1", "kg:nope", "kg:E2"})
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 3 || string(vals[0]) != "v1" || vals[1] != nil || string(vals[2]) != "v2" {
		t.Fatalf("MultiGet = %q", vals)
	}
	if ok, err := kv.Delete("kg:E1"); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("delete reported false")
	}
	if ok, err := kv.Delete("kg:E1"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("double delete reported true")
	}
	if kv.Bytes() <= 0 {
		t.Fatal("Bytes not tracked")
	}
	seen := 0
	if err := kv.Range(func(key string, value []byte) bool { seen++; return true }); err != nil {
		t.Fatal(err)
	}
	if seen != n-1 {
		t.Fatalf("Range saw %d keys, want %d", seen, n-1)
	}

	// Concurrent readers racing a writer (meaningful under -race).
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 100; i++ {
				if _, _, err := kv.Get(fmt.Sprintf("kg:E%d", 2+(r*100+i)%(n-2))); err != nil {
					t.Error(err)
				}
				if i%10 == 0 {
					if _, err := kv.MultiGet([]string{"kg:E2", "kg:E3", "kg:E4"}); err != nil {
						t.Error(err)
					}
				}
			}
		}(r)
	}
	for i := 0; i < 50; i++ {
		if err := kv.Put(fmt.Sprintf("kg:W%d", i), []byte("w")); err != nil {
			t.Error(err)
			break
		}
	}
	wg.Wait()

	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	if durable {
		re, err := s.open(t, dir).EntityKV()
		if err != nil {
			t.Fatal(err)
		}
		defer re.Close()
		v, ok, err := re.Get("kg:E0")
		if err != nil || !ok || string(v) != "v0-new" {
			t.Fatalf("reopened Get = %q, %v, %v", v, ok, err)
		}
		if _, ok, err := re.Get("kg:E1"); err != nil {
			t.Fatal(err)
		} else if ok {
			t.Fatal("delete did not survive reopen")
		}
	}
}

func (s Suite) entityKVTornTail(t *testing.T) {
	dir := t.TempDir()
	kv, err := s.open(t, dir).EntityKV()
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := kv.Put(fmt.Sprintf("k%d", i), []byte(fmt.Sprintf("v%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := kv.Close(); err != nil {
		t.Fatal(err)
	}
	tearNewestFile(t, dir)
	re, err := s.open(t, dir).EntityKV()
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if _, ok, err := re.Get("k4"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("torn final record still readable")
	}
	if got := re.Len(); got != 4 {
		t.Fatalf("Len after torn tail = %d, want 4", got)
	}
	// Re-putting the lost key (what oplog replay does) must heal the store.
	if err := re.Put("k4", []byte("v4")); err != nil {
		t.Fatal(err)
	}
	v, ok, err := re.Get("k4")
	if err != nil || !ok || string(v) != "v4" {
		t.Fatalf("healed Get = %q, %v, %v", v, ok, err)
	}
}

// entityKVOffHeap is the RAM-gating acceptance test: a payload volume far
// larger than what the Go heap should retain flows through the store, and
// the heap's growth must stay a small fraction of it — the payload bytes
// belong to the data file and the page cache, with only keys and locations
// on the heap.
func (s Suite) entityKVOffHeap(t *testing.T) {
	if testing.Short() {
		t.Skip("large-payload test skipped in -short mode")
	}
	dir := t.TempDir()
	kv, err := s.open(t, dir).EntityKV()
	if err != nil {
		t.Fatal(err)
	}
	defer kv.Close()

	const valSize = 256 << 10 // 256 KiB per entity payload
	const count = 256         // 64 MiB total
	val := bytes.Repeat([]byte{0xa5}, valSize)

	runtime.GC()
	var before runtime.MemStats
	runtime.ReadMemStats(&before)

	for i := 0; i < count; i++ {
		if err := kv.Put(fmt.Sprintf("kg:big%04d", i), val); err != nil {
			t.Fatal(err)
		}
	}
	// Touch a spread of keys so the read path has run too (reads copy one
	// value at a time; they must not pin the whole mapping into the heap).
	for i := 0; i < count; i += 16 {
		v, ok, err := kv.Get(fmt.Sprintf("kg:big%04d", i))
		if err != nil || !ok || len(v) != valSize {
			t.Fatalf("Get big%04d = %d bytes, %v, %v", i, len(v), ok, err)
		}
	}

	runtime.GC()
	var after runtime.MemStats
	runtime.ReadMemStats(&after)

	total := int64(valSize) * count
	var growth int64
	if after.HeapAlloc > before.HeapAlloc {
		growth = int64(after.HeapAlloc - before.HeapAlloc)
	}
	if growth > total/4 {
		t.Fatalf("heap grew %d bytes while storing %d payload bytes; payloads are on the heap, not disk", growth, total)
	}
	if kv.Bytes() != total {
		t.Fatalf("Bytes = %d, want %d", kv.Bytes(), total)
	}
}

func (s Suite) postings(t *testing.T) {
	p, err := s.open(t, t.TempDir()).Postings()
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()
	if err := p.Put("d1", map[string]int{"alpha": 2, "beta": 1}, 3, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Put("d2", map[string]int{"beta": 4}, 4, 2.0); err != nil {
		t.Fatal(err)
	}
	if got := p.Docs(); got != 2 {
		t.Fatalf("Docs = %d, want 2", got)
	}
	if err := p.Read(func(v storage.PostingsView) {
		if m := v.Posting("beta"); len(m) != 2 || m["d2"] != 4 {
			t.Errorf("Posting(beta) = %v", m)
		}
		if v.DocLen("d2") != 4 || v.TotalLen() != 7 {
			t.Errorf("DocLen/TotalLen = %d/%d", v.DocLen("d2"), v.TotalLen())
		}
		if v.Boost("d1") != 1 || v.Boost("d2") != 2 {
			t.Errorf("Boost = %v/%v (zero boost must default to 1)", v.Boost("d1"), v.Boost("d2"))
		}
	}); err != nil {
		t.Fatal(err)
	}
	// Put replaces: d1's old terms must vanish from the postings.
	if err := p.Put("d1", map[string]int{"gamma": 1}, 1, 0); err != nil {
		t.Fatal(err)
	}
	if err := p.Read(func(v storage.PostingsView) {
		if m := v.Posting("alpha"); len(m) != 0 {
			t.Errorf("stale posting survived replace: %v", m)
		}
		if v.TotalLen() != 5 {
			t.Errorf("TotalLen after replace = %d, want 5", v.TotalLen())
		}
	}); err != nil {
		t.Fatal(err)
	}
	if ok, err := p.Delete("d2"); err != nil {
		t.Fatal(err)
	} else if !ok {
		t.Fatal("delete reported false")
	}
	if ok, err := p.Delete("d2"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("double delete reported true")
	}
	if got := p.Docs(); got != 1 {
		t.Fatalf("Docs after delete = %d, want 1", got)
	}
}

func (s Suite) vectors(t *testing.T) {
	vs, err := s.open(t, t.TempDir()).Vectors()
	if err != nil {
		t.Fatal(err)
	}
	defer vs.Close()
	prev, err := vs.Put("v1", []float64{1, 0}, map[string]string{"type": "human"})
	if err != nil || prev != nil {
		t.Fatalf("first Put prev = %v, %v", prev, err)
	}
	prev, err = vs.Put("v1", []float64{0, 1}, nil)
	if err != nil || len(prev) != 2 || prev[0] != 1 {
		t.Fatalf("replacing Put prev = %v, %v", prev, err)
	}
	got, err := vs.Get("v1")
	if err != nil || len(got) != 2 || got[1] != 1 {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if _, err := vs.Put("v2", []float64{1, 1}, map[string]string{"type": "song"}); err != nil {
		t.Fatal(err)
	}
	if got := vs.Len(); got != 2 {
		t.Fatalf("Len = %d, want 2", got)
	}
	if err := vs.Read(func(v storage.VectorsView) {
		if vec := v.Vector("v2"); len(vec) != 2 {
			t.Errorf("Vector(v2) = %v", vec)
		}
		if a := v.Attrs("v2"); a["type"] != "song" {
			t.Errorf("Attrs(v2) = %v", a)
		}
		n := 0
		v.Range(func(id string, vec []float64, attrs map[string]string) bool { n++; return true })
		if n != 2 {
			t.Errorf("Range saw %d vectors", n)
		}
	}); err != nil {
		t.Fatal(err)
	}
	removed, ok, err := vs.Delete("v1")
	if err != nil || !ok || len(removed) != 2 {
		t.Fatalf("Delete = %v, %v, %v", removed, ok, err)
	}
	if _, ok, err := vs.Delete("v1"); err != nil {
		t.Fatal(err)
	} else if ok {
		t.Fatal("double delete reported true")
	}
}
