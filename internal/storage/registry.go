package storage

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultBackend is the backend the platform resolves when none is named.
const DefaultBackend = "memory"

// Options parameterizes backend resolution. Backends read the fields they
// understand and ignore the rest, so one Options value configures every
// role.
type Options struct {
	// Dir roots a durable backend's state; each role opens its own file or
	// subdirectory under it (oplog/, staging/, entities.dat, checkpoints/).
	// Required by durable backends, ignored by memory.
	Dir string
	// SegmentBytes is the segment rotation threshold for segment-file
	// stores (the staging store and the record log); 0 means the backend
	// default. Small values make the record log rotate often, which bounds
	// how much tail a compaction has to copy.
	SegmentBytes int64
	// Partitions is the platform's construction partition count (0 or 1 =
	// unpartitioned). Backends may shard their layout per construction
	// partition — a per-shard directory, file, or remote endpoint — so a
	// partitioned platform can mix storage characteristics per shard; the
	// built-in memory and disk backends currently keep one shared layout and
	// ignore the field.
	Partitions int
}

// Backend bundles one implementation of each storage role under a name.
// Register implementations at init time; resolve them at runtime by name.
type Backend interface {
	// Name is the registry key ("memory", "disk").
	Name() string
	// Durable reports whether the backend's state survives process restart.
	Durable() bool

	OpenRecordLog(o Options) (RecordLog, error)
	OpenBlobStore(o Options) (BlobStore, error)
	OpenEntityKV(o Options) (EntityKV, error)
	OpenPostings(o Options) (Postings, error)
	OpenVectors(o Options) (Vectors, error)
	OpenCheckpoints(o Options) (Checkpointer, error)
}

var (
	regMu    sync.RWMutex
	registry = make(map[string]Backend)
)

// Register adds a backend under its name. It panics on a duplicate name —
// registration happens at init time, where a collision is a programming
// error, not a runtime condition.
func Register(name string, b Backend) {
	regMu.Lock()
	defer regMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("storage: backend %q registered twice", name))
	}
	registry[name] = b
}

// Handle is a backend bound to resolution options: the runtime identity of
// "which storage, where". Each Open* call opens a fresh store for that role;
// the platform opens each role once and owns the result.
type Handle struct {
	backend Backend
	opts    Options
}

// Resolve looks up a registered backend by name and binds it to opts.
// An empty name resolves DefaultBackend.
func Resolve(name string, opts Options) (Handle, error) {
	if name == "" {
		name = DefaultBackend
	}
	regMu.RLock()
	b, ok := registry[name]
	regMu.RUnlock()
	if !ok {
		return Handle{}, fmt.Errorf("storage: unknown backend %q (registered: %v)", name, Backends())
	}
	return Handle{backend: b, opts: opts}, nil
}

// Backends returns the registered backend names, sorted.
func Backends() []string {
	regMu.RLock()
	defer regMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Name returns the resolved backend's name.
func (h Handle) Name() string { return h.backend.Name() }

// Durable reports whether the resolved backend survives restarts.
func (h Handle) Durable() bool { return h.backend.Durable() }

// RecordLog opens the operation log's record storage.
func (h Handle) RecordLog() (RecordLog, error) { return h.backend.OpenRecordLog(h.opts) }

// BlobStore opens the staging object store.
func (h Handle) BlobStore() (BlobStore, error) { return h.backend.OpenBlobStore(h.opts) }

// EntityKV opens the entity index's payload KV.
func (h Handle) EntityKV() (EntityKV, error) { return h.backend.OpenEntityKV(h.opts) }

// Postings opens the full-text index's posting storage.
func (h Handle) Postings() (Postings, error) { return h.backend.OpenPostings(h.opts) }

// Vectors opens the vector database's storage.
func (h Handle) Vectors() (Vectors, error) { return h.backend.OpenVectors(h.opts) }

// Checkpoints opens the recovery checkpoint store.
func (h Handle) Checkpoints() (Checkpointer, error) { return h.backend.OpenCheckpoints(h.opts) }
