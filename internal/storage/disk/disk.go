// Package disk implements the durable storage backend: CRC-framed,
// torn-tail-recoverable files for the roles that gate RAM or durability.
// It registers as "disk".
//
//   - RecordLog — CRC-framed records in rotating segment files under a
//     manifest (the torn-tail recovery idiom the operation log shipped
//     with, plus atomic prefix compaction via manifest flips).
//   - Checkpointer — atomically-published checkpoint files (temp + rename),
//     newest-intact-wins at recovery.
//   - BlobStore — a segment-file staging store: blobs append to rotating
//     segment files instead of one file per payload, so staging a payload
//     costs one write+fsync, not a file create + fsync + directory fsync.
//   - EntityKV — an append-only data file with an in-memory key→location
//     index and mmap-backed reads: entity payloads live in the page cache,
//     not the Go heap, so the entity index can exceed RAM.
//
// Postings and Vectors delegate to the memory backend: both index derived
// state that replays from the operation log, and neither holds the raw
// payload bytes that dominate memory at scale. They move behind durable
// implementations when a workload demands it; the interfaces are already
// carved.
//
// Crash consistency: every file is a sequence of CRC-framed records
// (triple.WriteRecord layout). Recovery replays a file and truncates at the
// first torn or corrupt record — exactly the operation log's recovery
// contract, now shared by every durable role. The entity KV additionally
// leans on the platform's replay semantics: its content derives from the
// log, and re-applied upserts are idempotent, so a tail lost between fsyncs
// heals on the next catch-up.
package disk

import (
	"encoding/binary"
	"fmt"
	"os"
	"path/filepath"

	"saga/internal/storage"
	"saga/internal/storage/memory"
)

type backend struct{}

func init() { storage.Register("disk", backend{}) }

// Name implements storage.Backend.
func (backend) Name() string { return "disk" }

// Durable implements storage.Backend.
func (backend) Durable() bool { return true }

// OpenRecordLog implements storage.Backend: the segmented log roots at
// Dir/oplog/.
func (backend) OpenRecordLog(o storage.Options) (storage.RecordLog, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("disk: record log needs Options.Dir")
	}
	return OpenRecordLog(filepath.Join(o.Dir, "oplog"), o.SegmentBytes)
}

// OpenBlobStore implements storage.Backend.
func (backend) OpenBlobStore(o storage.Options) (storage.BlobStore, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("disk: blob store needs Options.Dir")
	}
	return OpenSegmentBlobStore(filepath.Join(o.Dir, "staging"), o.SegmentBytes)
}

// OpenEntityKV implements storage.Backend.
func (backend) OpenEntityKV(o storage.Options) (storage.EntityKV, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("disk: entity kv needs Options.Dir")
	}
	if err := os.MkdirAll(o.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: %w", err)
	}
	return OpenEntityKV(filepath.Join(o.Dir, "entities.dat"))
}

// OpenPostings implements storage.Backend, delegating to the memory
// implementation (see the package comment).
func (backend) OpenPostings(storage.Options) (storage.Postings, error) {
	return memory.NewPostings(), nil
}

// OpenVectors implements storage.Backend, delegating to the memory
// implementation (see the package comment).
func (backend) OpenVectors(storage.Options) (storage.Vectors, error) {
	return memory.NewVectors(), nil
}

// OpenCheckpoints implements storage.Backend: checkpoint files root at
// Dir/checkpoints/.
func (backend) OpenCheckpoints(o storage.Options) (storage.Checkpointer, error) {
	if o.Dir == "" {
		return nil, fmt.Errorf("disk: checkpoint store needs Options.Dir")
	}
	return OpenCheckpoints(filepath.Join(o.Dir, "checkpoints"))
}

// Keyed-record payload layout, shared by the entity KV and the segment blob
// store: [op byte][uvarint keyLen][key][value...], framed by the CRC record
// codec (triple.WriteRecord). The value's offset within the payload is
// recorded at scan time so reads go straight to the value bytes.
const (
	opPut byte = 1
	opDel byte = 2
)

// encodeKeyed builds a keyed-record payload.
func encodeKeyed(op byte, key string, value []byte) []byte {
	buf := make([]byte, 0, 1+binary.MaxVarintLen64+len(key)+len(value))
	buf = append(buf, op)
	buf = binary.AppendUvarint(buf, uint64(len(key)))
	buf = append(buf, key...)
	buf = append(buf, value...)
	return buf
}

// decodeKeyed parses a keyed-record payload, returning the op, the key, and
// the value's offset within the payload.
func decodeKeyed(payload []byte) (op byte, key string, valOff int, err error) {
	if len(payload) < 2 {
		return 0, "", 0, fmt.Errorf("disk: keyed record too short (%d bytes)", len(payload))
	}
	op = payload[0]
	klen, n := binary.Uvarint(payload[1:])
	if n <= 0 || 1+n+int(klen) > len(payload) {
		return 0, "", 0, fmt.Errorf("disk: keyed record has corrupt key length")
	}
	valOff = 1 + n + int(klen)
	return op, string(payload[1+n : valOff]), valOff, nil
}
