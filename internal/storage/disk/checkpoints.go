package disk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"saga/internal/triple"
)

// checkpointKeep is how many checkpoint files the store retains. Keeping the
// previous one alongside the newest means a checkpoint that turns out to be
// unreadable (partial write that slipped past rename, media damage) degrades
// recovery to the prior watermark instead of LSN zero.
const checkpointKeep = 2

// Checkpoints is the durable checkpoint store: each Save writes one
// CRC-framed file named by its watermark (`%020d.ckpt`, so lexical order is
// LSN order) via temp-write + fsync + rename + dir fsync. Latest opens the
// newest file whose frame verifies, skipping damaged ones. Saves are atomic:
// a crash mid-save leaves a temp file (ignored) and the previous checkpoint
// intact.
type Checkpoints struct {
	mu     sync.Mutex
	dir    string
	closed bool
}

// OpenCheckpoints opens (creating if needed) a checkpoint store rooted at
// dir. Stale temp files from crashed saves are removed.
func OpenCheckpoints(dir string) (*Checkpoints, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: checkpoint dir %s: %w", dir, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: scan checkpoint dir: %w", err)
	}
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".tmp") {
			os.Remove(filepath.Join(dir, ent.Name())) //saga:errok — stale temp, best effort
		}
	}
	return &Checkpoints{dir: dir}, nil
}

// Save implements storage.Checkpointer.
func (c *Checkpoints) Save(lsn uint64, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.closed {
		return fmt.Errorf("disk: save to closed checkpoint store")
	}
	name := fmt.Sprintf("%020d.ckpt", lsn)
	tmp := filepath.Join(c.dir, name+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create checkpoint temp: %w", err)
	}
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	if err := triple.WriteRecord(&buf, payload); err != nil {
		f.Close()
		os.Remove(tmp) //saga:errok — unreferenced temp
		return fmt.Errorf("disk: frame checkpoint: %w", err)
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		os.Remove(tmp) //saga:errok — unreferenced temp
		return fmt.Errorf("disk: write checkpoint: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		os.Remove(tmp) //saga:errok — unreferenced temp
		return fmt.Errorf("disk: sync checkpoint: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("disk: close checkpoint temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(c.dir, name)); err != nil {
		return fmt.Errorf("disk: publish checkpoint %s: %w", name, err)
	}
	if err := c.syncDirLocked(); err != nil {
		return err
	}
	c.pruneLocked()
	return nil
}

func (c *Checkpoints) syncDirLocked() error {
	d, err := os.Open(c.dir)
	if err != nil {
		return fmt.Errorf("disk: open checkpoint dir: %w", err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		return fmt.Errorf("disk: sync checkpoint dir: %w", serr)
	}
	return nil
}

// pruneLocked removes all but the newest checkpointKeep files. Retention is
// bookkeeping, not correctness — a prune lost to a crash just leaves an
// extra old checkpoint.
func (c *Checkpoints) pruneLocked() {
	names := c.sortedNamesLocked()
	for len(names) > checkpointKeep {
		os.Remove(filepath.Join(c.dir, names[0])) //saga:errok — retention only
		names = names[1:]
	}
}

// sortedNamesLocked lists .ckpt files oldest-first (zero-padded LSN names
// sort chronologically).
func (c *Checkpoints) sortedNamesLocked() []string {
	entries, err := os.ReadDir(c.dir)
	if err != nil {
		return nil
	}
	var names []string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".ckpt") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names)
	return names
}

// Latest implements storage.Checkpointer: newest intact checkpoint wins;
// damaged files are skipped (recovery falls back to the previous checkpoint,
// then to full replay).
func (c *Checkpoints) Latest() (uint64, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	names := c.sortedNamesLocked()
	for i := len(names) - 1; i >= 0; i-- {
		var lsn uint64
		if _, err := fmt.Sscanf(names[i], "%d.ckpt", &lsn); err != nil {
			continue
		}
		f, err := os.Open(filepath.Join(c.dir, names[i]))
		if err != nil {
			continue
		}
		payload, err := triple.ReadRecord(f)
		f.Close()
		if err != nil {
			continue // torn or corrupt — try the previous one
		}
		return lsn, payload, true
	}
	return 0, nil, false
}

// Close implements storage.Checkpointer.
func (c *Checkpoints) Close() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.closed = true
	return nil
}
