package disk

import (
	"bufio"
	"errors"
	"io"
	"os"

	"saga/internal/triple"
)

// errScanStop is the sentinel a scan callback returns to stop the scan
// cleanly *before* the current record (used by Replay's reject-truncates
// contract).
var errScanStop = errors.New("disk: scan stopped")

// scanFramed reads CRC-framed records from f sequentially, calling fn with
// each record's frame offset and payload. It returns the offset of the first
// byte past the last record fn accepted: on a clean end that is the scanned
// size; on a torn or corrupt record — or a record fn rejected with
// errScanStop — it is the boundary before that record (the torn-tail
// recovery point). Any other fn error aborts the scan with that error.
func scanFramed(f *os.File, size int64, fn func(frameOff int64, payload []byte) error) (good int64, err error) {
	r := bufio.NewReaderSize(io.NewSectionReader(f, 0, size), 1<<16)
	var off int64
	for {
		payload, err := triple.ReadRecord(r)
		if err == io.EOF {
			return off, nil
		}
		if err != nil {
			// Torn or corrupt tail (crash during append): recover the prefix.
			return off, nil
		}
		if err := fn(off, payload); err != nil {
			if errors.Is(err, errScanStop) {
				return off, nil
			}
			return off, err
		}
		off += 8 + int64(len(payload))
	}
}
