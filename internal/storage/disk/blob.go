package disk

import (
	"bytes"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"saga/internal/triple"
)

// DefaultSegmentBytes is the staging segment rotation threshold when
// Options.SegmentBytes is zero.
const DefaultSegmentBytes = 4 << 20

// blobLoc locates a staged blob: segment index (into segs), byte offset of
// the blob within the segment file, and length.
type blobLoc struct {
	seg int
	off int64
	n   int32
}

// SegmentBlobStore is the disk staging store: blobs append as CRC-framed
// keyed records to rotating segment files, with an in-memory key→location
// index rebuilt by replaying the segments at open. Compared to one file per
// payload, staging costs one write+fsync on an already-open file — directory
// mutation (create + dir fsync) happens only at segment rotation.
//
// Deletes append tombstone records (not fsynced — retention bookkeeping, not
// correctness; a tombstone lost to a crash resurfaces a blob, never loses
// one). Recovery replays each segment and truncates at its first torn or
// corrupt record; only the active (last) segment can legitimately tear in a
// crash, but earlier segments recover the same way, so a damaged store
// degrades to missing blobs instead of refusing to open.
type SegmentBlobStore struct {
	mu       sync.RWMutex
	dir      string
	segBytes int64
	segs     []*os.File // open segment files, oldest first; last is active
	sizes    []int64    // valid bytes per segment
	idx      map[string]blobLoc
	seq      uint64
	closed   bool
}

// OpenSegmentBlobStore opens (creating if needed) a segment-file staging
// store rooted at dir. Existing blobs are retained and the key sequence
// resumes past them.
func OpenSegmentBlobStore(dir string, segBytes int64) (*SegmentBlobStore, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: staging dir %s: %w", dir, err)
	}
	s := &SegmentBlobStore{dir: dir, segBytes: segBytes, idx: make(map[string]blobLoc)}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: scan staging dir: %w", err)
	}
	var names []string
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".seg") {
			names = append(names, ent.Name())
		}
	}
	sort.Strings(names) // zero-padded numeric names sort chronologically
	for _, name := range names {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			s.closeAll()
			return nil, fmt.Errorf("disk: open segment %s: %w", name, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			s.closeAll()
			return nil, fmt.Errorf("disk: stat segment %s: %w", name, err)
		}
		segIndex := len(s.segs)
		good, err := scanFramed(f, st.Size(), func(frameOff int64, payload []byte) error {
			op, key, valOff, err := decodeKeyed(payload)
			if err != nil {
				return errScanStop // treat as torn tail of this segment
			}
			switch op {
			case opPut:
				s.idx[key] = blobLoc{
					seg: segIndex,
					off: frameOff + 8 + int64(valOff),
					n:   int32(len(payload) - valOff),
				}
			case opDel:
				delete(s.idx, key)
			}
			var n uint64
			if _, err := fmt.Sscanf(key, "staging/%d", &n); err == nil && n > s.seq {
				s.seq = n
			}
			return nil
		})
		if err != nil {
			f.Close()
			s.closeAll()
			return nil, fmt.Errorf("disk: recover segment %s: %w", name, err)
		}
		if good != st.Size() {
			if err := f.Truncate(good); err != nil {
				f.Close()
				s.closeAll()
				return nil, fmt.Errorf("disk: truncate torn tail of %s: %w", name, err)
			}
		}
		s.segs = append(s.segs, f)
		s.sizes = append(s.sizes, good)
	}
	if len(s.segs) == 0 {
		if err := s.rotateLocked(); err != nil {
			return nil, err
		}
	}
	return s, nil
}

func (s *SegmentBlobStore) closeAll() {
	for _, f := range s.segs {
		f.Close()
	}
}

// rotateLocked creates the next segment file and fsyncs the directory entry
// so a crash cannot recover a log op whose payload segment never became
// visible.
func (s *SegmentBlobStore) rotateLocked() error {
	name := fmt.Sprintf("%06d.seg", len(s.segs)+1)
	f, err := os.OpenFile(filepath.Join(s.dir, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create segment %s: %w", name, err)
	}
	d, err := os.Open(s.dir)
	if err != nil {
		f.Close()
		return fmt.Errorf("disk: open staging dir: %w", err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		f.Close()
		return fmt.Errorf("disk: sync staging dir: %w", serr)
	}
	s.segs = append(s.segs, f)
	s.sizes = append(s.sizes, 0)
	return nil
}

// appendLocked frames and appends a keyed record to the active segment,
// returning the blob's location. sync controls whether the segment is
// fsynced (puts yes, tombstones no).
func (s *SegmentBlobStore) appendLocked(op byte, key string, blob []byte, sync bool) (blobLoc, error) {
	active := len(s.segs) - 1
	if s.sizes[active] >= s.segBytes {
		if err := s.rotateLocked(); err != nil {
			return blobLoc{}, err
		}
		active = len(s.segs) - 1
	}
	payload := encodeKeyed(op, key, blob)
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	if err := triple.WriteRecord(&buf, payload); err != nil {
		return blobLoc{}, fmt.Errorf("disk: frame blob record: %w", err)
	}
	f, off := s.segs[active], s.sizes[active]
	if _, err := f.WriteAt(buf.Bytes(), off); err != nil {
		return blobLoc{}, fmt.Errorf("disk: write blob record: %w", err)
	}
	if sync {
		if err := f.Sync(); err != nil {
			return blobLoc{}, fmt.Errorf("disk: sync segment: %w", err)
		}
	}
	s.sizes[active] = off + int64(buf.Len())
	return blobLoc{
		seg: active,
		off: off + 8 + int64(len(payload)-len(blob)),
		n:   int32(len(blob)),
	}, nil
}

// Stage implements storage.BlobStore: the blob is durable (record written
// and fsynced) before the key is returned, so an operation log entry can
// safely reference it.
func (s *SegmentBlobStore) Stage(payload []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return "", fmt.Errorf("disk: stage to closed blob store")
	}
	s.seq++
	key := fmt.Sprintf("staging/%08d", s.seq)
	loc, err := s.appendLocked(opPut, key, payload, true)
	if err != nil {
		s.seq--
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	s.idx[key] = loc
	return key, nil
}

// Get implements storage.BlobStore: a positioned read of exactly the blob
// bytes (CRC verified at open-time replay; runtime reads serve from the
// page cache).
func (s *SegmentBlobStore) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	loc, ok := s.idx[key]
	var f *os.File
	if ok {
		f = s.segs[loc.seg]
	}
	s.mu.RUnlock()
	if !ok {
		return nil, false
	}
	buf := make([]byte, loc.n)
	if _, err := f.ReadAt(buf, loc.off); err != nil {
		return nil, false
	}
	return buf, true
}

// Delete implements storage.BlobStore.
func (s *SegmentBlobStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("disk: delete from closed blob store")
	}
	if _, ok := s.idx[key]; !ok {
		return nil
	}
	delete(s.idx, key)
	if _, err := s.appendLocked(opDel, key, nil, false); err != nil {
		return fmt.Errorf("disk: delete %s: %w", key, err)
	}
	return nil
}

// Len implements storage.BlobStore.
func (s *SegmentBlobStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.idx)
}

// Close implements storage.BlobStore.
func (s *SegmentBlobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	var firstErr error
	for _, f := range s.segs {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	s.segs = nil
	return firstErr
}

// DirBlobStore persists each payload as its own file under a directory —
// the staging layout the platform shipped with for durable-oplog
// deployments, kept for on-disk compatibility (`<oplog>.staging/` dirs).
// New deployments should prefer SegmentBlobStore (the "disk" backend's
// default), which avoids a file create + two fsyncs per staged payload.
type DirBlobStore struct {
	mu     sync.Mutex
	dir    string
	seq    uint64
	closed bool
}

// OpenDirBlobStore opens (creating if needed) a directory-backed staging
// store. Existing payloads are retained and the key sequence resumes past
// them.
func OpenDirBlobStore(dir string) (*DirBlobStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: staging dir %s: %w", dir, err)
	}
	s := &DirBlobStore{dir: dir}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: scan staging dir: %w", err)
	}
	for _, ent := range entries {
		var n uint64
		if _, err := fmt.Sscanf(ent.Name(), "%d.blob", &n); err == nil && n > s.seq {
			s.seq = n
		}
	}
	return s, nil
}

func (s *DirBlobStore) path(key string) string {
	return filepath.Join(s.dir, strings.TrimPrefix(key, "staging/")+".blob")
}

// Stage implements storage.BlobStore. The payload must be durable before
// the log records an operation that references it: a recovered log pointing
// at a lost payload would stall every agent at that LSN, so a failed write
// aborts the publish instead of poisoning the log.
func (s *DirBlobStore) Stage(payload []byte) (string, error) {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return "", fmt.Errorf("disk: stage to closed blob store")
	}
	s.seq++
	key := fmt.Sprintf("staging/%08d", s.seq)
	s.mu.Unlock()
	f, err := os.OpenFile(s.path(key), os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	if _, err := f.Write(payload); err != nil {
		f.Close()
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	if err := f.Close(); err != nil {
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	// Sync the directory too: the file's fsync persists its contents, but
	// the new directory entry needs its own fsync, or a crash can recover a
	// log op whose payload file never became visible.
	d, err := os.Open(s.dir)
	if err != nil {
		return "", fmt.Errorf("disk: stage %s: %w", key, err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		return "", fmt.Errorf("disk: stage %s: sync dir: %w", key, serr)
	}
	return key, nil
}

// Get implements storage.BlobStore.
func (s *DirBlobStore) Get(key string) ([]byte, bool) {
	data, err := os.ReadFile(s.path(key))
	if err != nil {
		return nil, false
	}
	return data, true
}

// Delete implements storage.BlobStore.
func (s *DirBlobStore) Delete(key string) error {
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("disk: delete %s: %w", key, err)
	}
	return nil
}

// Len implements storage.BlobStore.
func (s *DirBlobStore) Len() int {
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return 0
	}
	n := 0
	for _, ent := range entries {
		if strings.HasSuffix(ent.Name(), ".blob") {
			n++
		}
	}
	return n
}

// Close implements storage.BlobStore.
func (s *DirBlobStore) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.closed = true
	return nil
}
