package disk

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"saga/internal/triple"
)

// manifestName is the record log's segment manifest: one segment file name
// per line, oldest first. The manifest is the log's single source of truth —
// a .seg file not listed in it does not exist (it is a leftover from a
// crashed compaction or rotation and is removed at open). Every structural
// change (rotation, compaction, cross-segment truncation) writes a fresh
// manifest to a temp file, fsyncs it, renames it over the old one, and fsyncs
// the directory, so readers reopening after a crash see either the old
// segment set or the new one — never a mix.
const manifestName = "MANIFEST"

// RecordLog is the durable record log: CRC-framed records appended to
// rotating segment files under one directory, with a manifest naming the
// live segments. Open recovers the valid prefix of each listed segment and
// truncates a torn tail (crash during append); Append fsyncs per record —
// the operation log is the platform's durability anchor, so an acknowledged
// append must survive a crash.
//
// Segmentation is what makes compaction atomic: Compact stages the rewritten
// prefix in a fresh segment, flips the manifest, and only then deletes the
// replaced segments. A crash on either side of the flip leaves a fully
// consistent log (stale new segment removed as an orphan, or stale old
// segments removed as orphans).
type RecordLog struct {
	mu       sync.Mutex
	dir      string
	segBytes int64
	names    []string   // live segment file names, oldest first
	segs     []*os.File // open segment files, aligned with names
	sizes    []int64    // valid framed bytes per segment
	counts   []int      // records per segment
	nextSeg  uint64     // next segment sequence number (monotonic, never reused)
	closed   bool
}

// OpenRecordLog creates or recovers a segmented record log rooted at dir.
// segBytes is the rotation threshold for appends (0 = DefaultSegmentBytes);
// it does not bound compaction-written segments.
func OpenRecordLog(dir string, segBytes int64) (*RecordLog, error) {
	if segBytes <= 0 {
		segBytes = DefaultSegmentBytes
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("disk: record log dir %s: %w", dir, err)
	}
	l := &RecordLog{dir: dir, segBytes: segBytes}

	listed, err := l.readManifest()
	if err != nil {
		return nil, err
	}
	// Every .seg on disk — listed or orphaned — advances the sequence so a
	// name is never reused, even across a crashed compaction.
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("disk: scan record log dir: %w", err)
	}
	inManifest := make(map[string]bool, len(listed))
	for _, name := range listed {
		inManifest[name] = true
	}
	for _, ent := range entries {
		name := ent.Name()
		var n uint64
		if _, err := fmt.Sscanf(name, "%d.seg", &n); err == nil {
			if n >= l.nextSeg {
				l.nextSeg = n + 1
			}
			if !inManifest[name] {
				// Orphan from a crashed rotation/compaction: the manifest
				// never adopted it, so its contents were never acknowledged
				// (rotation publishes the manifest before appending) or were
				// superseded (compaction). Remove it.
				if err := os.Remove(filepath.Join(dir, name)); err != nil {
					return nil, fmt.Errorf("disk: remove orphan segment %s: %w", name, err)
				}
			}
		}
		if name == manifestName+".tmp" {
			os.Remove(filepath.Join(dir, name)) //saga:errok — stale temp, best effort
		}
	}
	if l.nextSeg == 0 {
		l.nextSeg = 1
	}

	for _, name := range listed {
		f, err := os.OpenFile(filepath.Join(dir, name), os.O_RDWR, 0o644)
		if err != nil {
			l.closeAll()
			return nil, fmt.Errorf("disk: open log segment %s: %w", name, err)
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			l.closeAll()
			return nil, fmt.Errorf("disk: stat log segment %s: %w", name, err)
		}
		count := 0
		good, err := scanFramed(f, st.Size(), func(int64, []byte) error {
			count++
			return nil
		})
		if err != nil {
			f.Close()
			l.closeAll()
			return nil, fmt.Errorf("disk: recover log segment %s: %w", name, err)
		}
		if good != st.Size() {
			if err := f.Truncate(good); err != nil {
				f.Close()
				l.closeAll()
				return nil, fmt.Errorf("disk: truncate torn tail of %s: %w", name, err)
			}
		}
		l.names = append(l.names, name)
		l.segs = append(l.segs, f)
		l.sizes = append(l.sizes, good)
		l.counts = append(l.counts, count)
	}
	if len(l.segs) == 0 {
		if err := l.rotateLocked(); err != nil {
			l.closeAll()
			return nil, err
		}
	}
	return l, nil
}

func (l *RecordLog) closeAll() {
	for _, f := range l.segs {
		f.Close()
	}
	l.segs = nil
}

// readManifest returns the listed segment names (absent manifest = empty
// log). Names are validated against the %d.seg pattern and kept in manifest
// order.
func (l *RecordLog) readManifest() ([]string, error) {
	data, err := os.ReadFile(filepath.Join(l.dir, manifestName))
	if os.IsNotExist(err) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("disk: read log manifest: %w", err)
	}
	var names []string
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		var n uint64
		if _, err := fmt.Sscanf(line, "%d.seg", &n); err != nil {
			return nil, fmt.Errorf("disk: log manifest lists invalid segment %q", line)
		}
		names = append(names, line)
	}
	return names, nil
}

// writeManifestLocked durably publishes a new segment list: temp file, fsync,
// rename over the manifest, directory fsync. The rename is the atomic commit
// point for every structural log change.
func (l *RecordLog) writeManifestLocked(names []string) error {
	tmp := filepath.Join(l.dir, manifestName+".tmp")
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create manifest temp: %w", err)
	}
	var buf bytes.Buffer
	for _, name := range names {
		buf.WriteString(name)
		buf.WriteByte('\n')
	}
	if _, err := f.Write(buf.Bytes()); err != nil {
		f.Close()
		return fmt.Errorf("disk: write manifest temp: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("disk: sync manifest temp: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("disk: close manifest temp: %w", err)
	}
	if err := os.Rename(tmp, filepath.Join(l.dir, manifestName)); err != nil {
		return fmt.Errorf("disk: publish manifest: %w", err)
	}
	return l.syncDirLocked()
}

func (l *RecordLog) syncDirLocked() error {
	d, err := os.Open(l.dir)
	if err != nil {
		return fmt.Errorf("disk: open record log dir: %w", err)
	}
	serr := d.Sync()
	d.Close()
	if serr != nil {
		return fmt.Errorf("disk: sync record log dir: %w", serr)
	}
	return nil
}

// rotateLocked creates the next segment and publishes it in the manifest
// BEFORE any record lands in it: a crash between file creation and manifest
// publish leaves an orphan holding no acknowledged data.
func (l *RecordLog) rotateLocked() error {
	name := fmt.Sprintf("%06d.seg", l.nextSeg)
	f, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create log segment %s: %w", name, err)
	}
	if err := l.syncDirLocked(); err != nil {
		f.Close()
		return err
	}
	if err := l.writeManifestLocked(append(append([]string(nil), l.names...), name)); err != nil {
		f.Close()
		return err
	}
	l.nextSeg++
	l.names = append(l.names, name)
	l.segs = append(l.segs, f)
	l.sizes = append(l.sizes, 0)
	l.counts = append(l.counts, 0)
	return nil
}

// Append implements storage.RecordLog: frame, write, fsync (rotating first
// when the active segment is full).
func (l *RecordLog) Append(payload []byte) error {
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	if err := triple.WriteRecord(&buf, payload); err != nil {
		return fmt.Errorf("disk: frame record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("disk: append to closed record log %s", l.dir)
	}
	active := len(l.segs) - 1
	if l.sizes[active] >= l.segBytes {
		if err := l.rotateLocked(); err != nil {
			return err
		}
		active = len(l.segs) - 1
	}
	f, off := l.segs[active], l.sizes[active]
	if _, err := f.WriteAt(buf.Bytes(), off); err != nil {
		return fmt.Errorf("disk: write record: %w", err)
	}
	if err := f.Sync(); err != nil {
		return fmt.Errorf("disk: sync record log: %w", err)
	}
	l.sizes[active] = off + int64(buf.Len())
	l.counts[active]++
	return nil
}

// Replay implements storage.RecordLog: records stream to fn segment by
// segment in append order; a record fn rejects truncates the log at that
// record (torn-tail semantics — any later segments are dropped too).
func (l *RecordLog) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("disk: replay of closed record log %s", l.dir)
	}
	for i := range l.segs {
		accepted := 0
		good, err := scanFramed(l.segs[i], l.sizes[i], func(_ int64, payload []byte) error {
			if err := fn(payload); err != nil {
				return errScanStop
			}
			accepted++
			return nil
		})
		if err != nil {
			return err
		}
		if good == l.sizes[i] {
			continue
		}
		// fn rejected a record: truncate this segment there and drop every
		// later segment — everything past a rejected record is tail.
		if err := l.segs[i].Truncate(good); err != nil {
			return fmt.Errorf("disk: truncate rejected tail of %s: %w", l.names[i], err)
		}
		l.sizes[i] = good
		l.counts[i] = accepted
		if i < len(l.segs)-1 {
			dropped := append([]string(nil), l.names[i+1:]...)
			if err := l.writeManifestLocked(append([]string(nil), l.names[:i+1]...)); err != nil {
				return err
			}
			for j := i + 1; j < len(l.segs); j++ {
				l.segs[j].Close()
			}
			l.names = l.names[:i+1]
			l.segs = l.segs[:i+1]
			l.sizes = l.sizes[:i+1]
			l.counts = l.counts[:i+1]
			for _, name := range dropped {
				os.Remove(filepath.Join(l.dir, name)) //saga:errok — already unreferenced by the manifest
			}
		}
		return nil
	}
	return nil
}

// Compact implements storage.RecordLog. The rewritten prefix (replacement
// plus the tail of the boundary segment, re-framed byte-for-byte) is staged
// in a fresh segment, fsynced, adopted by a manifest flip, and only then are
// the replaced segments deleted — so a reader reopening after a crash at any
// point sees the old prefix or the new one in full.
func (l *RecordLog) Compact(drop int, replacement [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("disk: compact closed record log %s", l.dir)
	}
	total := 0
	for _, c := range l.counts {
		total += c
	}
	if drop < 0 || drop > total {
		return fmt.Errorf("disk: compact drop %d out of range (log has %d records)", drop, total)
	}
	if drop == 0 && len(replacement) == 0 {
		return nil
	}

	// Locate the boundary: segment k holds the first kept record.
	k, before := 0, 0
	for k < len(l.counts) && before+l.counts[k] <= drop {
		before += l.counts[k]
		k++
	}
	// Byte offset of the first kept record within segment k (k may equal
	// len(segs) when drop consumes the whole log; then there is no suffix).
	var suffixOff int64
	suffixCount := 0
	if k < len(l.segs) {
		skip := drop - before
		seen := 0
		var err error
		suffixOff, err = scanFramed(l.segs[k], l.sizes[k], func(int64, []byte) error {
			if seen == skip {
				return errScanStop
			}
			seen++
			return nil
		})
		if err != nil {
			return fmt.Errorf("disk: locate compaction boundary in %s: %w", l.names[k], err)
		}
		suffixCount = l.counts[k] - skip
	}

	// Stage the rewritten prefix in a fresh, not-yet-adopted segment.
	name := fmt.Sprintf("%06d.seg", l.nextSeg)
	nf, err := os.OpenFile(filepath.Join(l.dir, name), os.O_CREATE|os.O_RDWR|os.O_EXCL, 0o644)
	if err != nil {
		return fmt.Errorf("disk: create compaction segment %s: %w", name, err)
	}
	abort := func(e error) error {
		nf.Close()
		os.Remove(filepath.Join(l.dir, name)) //saga:errok — unreferenced staging file
		return e
	}
	var buf bytes.Buffer
	for _, rec := range replacement {
		if err := triple.WriteRecord(&buf, rec); err != nil {
			return abort(fmt.Errorf("disk: frame compacted record: %w", err))
		}
	}
	w := io.Writer(nf)
	if _, err := w.Write(buf.Bytes()); err != nil {
		return abort(fmt.Errorf("disk: write compacted records: %w", err))
	}
	newSize := int64(buf.Len())
	if k < len(l.segs) && suffixOff < l.sizes[k] {
		// Copy the boundary segment's kept tail verbatim — the records are
		// already framed, so a byte copy preserves them exactly.
		n, err := io.Copy(w, io.NewSectionReader(l.segs[k], suffixOff, l.sizes[k]-suffixOff))
		if err != nil {
			return abort(fmt.Errorf("disk: copy boundary segment tail: %w", err))
		}
		newSize += n
	}
	if err := nf.Sync(); err != nil {
		return abort(fmt.Errorf("disk: sync compaction segment: %w", err))
	}
	if err := l.syncDirLocked(); err != nil {
		return abort(err)
	}

	// Adopt: manifest flips from [0..k, k+1..] to [new, k+1..].
	keepAfter := k + 1
	if keepAfter > len(l.names) {
		keepAfter = len(l.names)
	}
	newNames := append([]string{name}, l.names[keepAfter:]...)
	if err := l.writeManifestLocked(newNames); err != nil {
		return abort(err)
	}
	l.nextSeg++

	// Old prefix segments are now unreferenced; drop them.
	dropped := append([]string(nil), l.names[:keepAfter]...)
	for i := 0; i < keepAfter; i++ {
		l.segs[i].Close()
	}
	l.names = append([]string{name}, l.names[keepAfter:]...)
	l.segs = append([]*os.File{nf}, l.segs[keepAfter:]...)
	l.sizes = append([]int64{newSize}, l.sizes[keepAfter:]...)
	l.counts = append([]int{len(replacement) + suffixCount}, l.counts[keepAfter:]...)
	for _, old := range dropped {
		os.Remove(filepath.Join(l.dir, old)) //saga:errok — already unreferenced by the manifest
	}
	return nil
}

// Segments returns the live segment file names, oldest first (for tests and
// recovery stats).
func (l *RecordLog) Segments() []string {
	l.mu.Lock()
	defer l.mu.Unlock()
	return append([]string(nil), l.names...)
}

// Len implements storage.RecordLog.
func (l *RecordLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	n := 0
	for _, c := range l.counts {
		n += c
	}
	return n
}

// Close implements storage.RecordLog.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	var firstErr error
	for _, f := range l.segs {
		if err := f.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	l.segs = nil
	return firstErr
}
