package disk

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"saga/internal/triple"
)

// RecordLog is the durable record log: one append-only file of CRC-framed
// records. Open recovers the valid prefix and truncates a torn tail (crash
// during append); Append fsyncs per record — the operation log is the
// platform's durability anchor, so an acknowledged append must survive a
// crash.
type RecordLog struct {
	mu     sync.Mutex
	f      *os.File
	path   string
	size   int64 // bytes of valid framed records
	count  int
	closed bool
}

// OpenRecordLog creates or recovers a record log at path.
func OpenRecordLog(path string) (*RecordLog, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open record log %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat record log %s: %w", path, err)
	}
	l := &RecordLog{f: f, path: path}
	good, err := scanFramed(f, st.Size(), func(_ int64, payload []byte) error {
		l.count++
		return nil
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: recover record log %s: %w", path, err)
	}
	l.size = good
	if good != st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: truncate torn tail of %s: %w", path, err)
		}
	}
	return l, nil
}

// Append implements storage.RecordLog: frame, write, fsync.
func (l *RecordLog) Append(payload []byte) error {
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	if err := triple.WriteRecord(&buf, payload); err != nil {
		return fmt.Errorf("disk: frame record: %w", err)
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("disk: append to closed record log %s", l.path)
	}
	if _, err := l.f.WriteAt(buf.Bytes(), l.size); err != nil {
		return fmt.Errorf("disk: write record: %w", err)
	}
	if err := l.f.Sync(); err != nil {
		return fmt.Errorf("disk: sync record log: %w", err)
	}
	l.size += int64(buf.Len())
	l.count++
	return nil
}

// Replay implements storage.RecordLog: records stream to fn in append
// order; a record fn rejects truncates the log at that record (torn-tail
// semantics — see the interface contract).
func (l *RecordLog) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("disk: replay of closed record log %s", l.path)
	}
	accepted := 0
	good, err := scanFramed(l.f, l.size, func(_ int64, payload []byte) error {
		if err := fn(payload); err != nil {
			return errScanStop
		}
		accepted++
		return nil
	})
	if err != nil {
		return err
	}
	if good != l.size {
		if err := l.f.Truncate(good); err != nil {
			return fmt.Errorf("disk: truncate rejected tail of %s: %w", l.path, err)
		}
		l.size = good
		l.count = accepted
	}
	return nil
}

// Len implements storage.RecordLog.
func (l *RecordLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.count
}

// Close implements storage.RecordLog.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return nil
	}
	l.closed = true
	err := l.f.Close()
	l.f = nil
	return err
}
