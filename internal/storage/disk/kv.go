package disk

import (
	"bytes"
	"fmt"
	"os"
	"sync"

	"saga/internal/triple"
)

// kvLoc locates an entity payload: byte offset of the value within the data
// file and its length.
type kvLoc struct {
	off int64
	n   int32
}

// EntityKV is the disk entity store: one append-only data file of CRC-framed
// keyed records with an in-memory key→location index, read through a shared
// read-only mmap. Payload bytes live in the page cache, not the Go heap, so
// the entity index can exceed RAM; the heap holds only keys and 12-byte
// locations.
//
// Puts are not individually fsynced: entity state derives from the operation
// log (the durability anchor), and upserts are idempotent under replay, so a
// tail lost between syncs heals on the next catch-up. Close syncs the file.
// Recovery truncates at the first torn or corrupt record.
type EntityKV struct {
	mu        sync.RWMutex
	f         *os.File
	path      string
	size      int64 // bytes of valid framed records
	mapped    []byte
	idx       map[string]kvLoc
	liveBytes int64 // sum of live value lengths
	closed    bool
}

// OpenEntityKV creates or recovers an entity KV at path.
func OpenEntityKV(path string) (*EntityKV, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, fmt.Errorf("disk: open entity kv %s: %w", path, err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: stat entity kv %s: %w", path, err)
	}
	kv := &EntityKV{f: f, path: path, idx: make(map[string]kvLoc)}
	good, err := scanFramed(f, st.Size(), func(frameOff int64, payload []byte) error {
		op, key, valOff, err := decodeKeyed(payload)
		if err != nil {
			return errScanStop // treat as torn tail
		}
		switch op {
		case opPut:
			if old, ok := kv.idx[key]; ok {
				kv.liveBytes -= int64(old.n)
			}
			n := int32(len(payload) - valOff)
			kv.idx[key] = kvLoc{off: frameOff + 8 + int64(valOff), n: n}
			kv.liveBytes += int64(n)
		case opDel:
			if old, ok := kv.idx[key]; ok {
				kv.liveBytes -= int64(old.n)
				delete(kv.idx, key)
			}
		}
		return nil
	})
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("disk: recover entity kv %s: %w", path, err)
	}
	kv.size = good
	if good != st.Size() {
		if err := f.Truncate(good); err != nil {
			f.Close()
			return nil, fmt.Errorf("disk: truncate torn tail of %s: %w", path, err)
		}
	}
	if err := kv.remapLocked(); err != nil {
		f.Close()
		return nil, err
	}
	return kv, nil
}

// remapLocked (re)establishes the read mapping to cover the current file
// size. Callers hold the write lock (or have exclusive access at open).
func (kv *EntityKV) remapLocked() error {
	if kv.mapped != nil {
		if err := munmapFile(kv.mapped); err != nil {
			return fmt.Errorf("disk: unmap %s: %w", kv.path, err)
		}
		kv.mapped = nil
	}
	m, err := mmapFile(kv.f, kv.size)
	if err != nil {
		return fmt.Errorf("disk: map %s: %w", kv.path, err)
	}
	kv.mapped = m
	return nil
}

// appendLocked frames and appends a keyed record, returning the value's
// location. Callers hold the write lock.
func (kv *EntityKV) appendLocked(op byte, key string, value []byte) (kvLoc, error) {
	payload := encodeKeyed(op, key, value)
	var buf bytes.Buffer
	buf.Grow(8 + len(payload))
	if err := triple.WriteRecord(&buf, payload); err != nil {
		return kvLoc{}, fmt.Errorf("disk: frame entity record: %w", err)
	}
	if _, err := kv.f.WriteAt(buf.Bytes(), kv.size); err != nil {
		return kvLoc{}, fmt.Errorf("disk: write entity record: %w", err)
	}
	loc := kvLoc{off: kv.size + 8 + int64(len(payload)-len(value)), n: int32(len(value))}
	kv.size += int64(buf.Len())
	return loc, nil
}

// readLocked copies the value at loc out of the mapping. Callers hold at
// least the read lock and have checked the mapping covers loc.
func (kv *EntityKV) readLocked(loc kvLoc) []byte {
	out := make([]byte, loc.n)
	copy(out, kv.mapped[loc.off:loc.off+int64(loc.n)])
	return out
}

// covered reports whether loc lies within the current mapping.
func (kv *EntityKV) covered(loc kvLoc) bool {
	return loc.off+int64(loc.n) <= int64(len(kv.mapped))
}

// Put implements storage.EntityKV.
func (kv *EntityKV) Put(key string, value []byte) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return fmt.Errorf("disk: put to closed entity kv %s", kv.path)
	}
	loc, err := kv.appendLocked(opPut, key, value)
	if err != nil {
		return err
	}
	if old, ok := kv.idx[key]; ok {
		kv.liveBytes -= int64(old.n)
	}
	kv.idx[key] = loc
	kv.liveBytes += int64(loc.n)
	return nil
}

// Get implements storage.EntityKV. The fast path runs under the read lock
// against the existing mapping; only a location past the mapped size (a
// write since the last remap) takes the write lock to extend the mapping.
func (kv *EntityKV) Get(key string) ([]byte, bool, error) {
	kv.mu.RLock()
	if kv.closed {
		kv.mu.RUnlock()
		return nil, false, fmt.Errorf("disk: get from closed entity kv %s", kv.path)
	}
	loc, ok := kv.idx[key]
	if !ok {
		kv.mu.RUnlock()
		return nil, false, nil
	}
	if kv.covered(loc) {
		out := kv.readLocked(loc)
		kv.mu.RUnlock()
		return out, true, nil
	}
	kv.mu.RUnlock()

	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil, false, fmt.Errorf("disk: get from closed entity kv %s", kv.path)
	}
	loc, ok = kv.idx[key]
	if !ok {
		return nil, false, nil
	}
	if !kv.covered(loc) {
		if err := kv.remapLocked(); err != nil {
			return nil, false, err
		}
	}
	return kv.readLocked(loc), true, nil
}

// MultiGet implements storage.EntityKV: one read-locked pass over the
// mapping, then at most one remap under the write lock for locations past
// the mapped size.
func (kv *EntityKV) MultiGet(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	var uncovered []int
	kv.mu.RLock()
	if kv.closed {
		kv.mu.RUnlock()
		return nil, fmt.Errorf("disk: multiget from closed entity kv %s", kv.path)
	}
	for i, key := range keys {
		loc, ok := kv.idx[key]
		if !ok {
			continue
		}
		if kv.covered(loc) {
			out[i] = kv.readLocked(loc)
		} else {
			uncovered = append(uncovered, i)
		}
	}
	kv.mu.RUnlock()
	if len(uncovered) == 0 {
		return out, nil
	}

	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil, fmt.Errorf("disk: multiget from closed entity kv %s", kv.path)
	}
	if err := kv.remapLocked(); err != nil {
		return nil, err
	}
	for _, i := range uncovered {
		if loc, ok := kv.idx[keys[i]]; ok && kv.covered(loc) {
			out[i] = kv.readLocked(loc)
		}
	}
	return out, nil
}

// Delete implements storage.EntityKV.
func (kv *EntityKV) Delete(key string) (bool, error) {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return false, fmt.Errorf("disk: delete from closed entity kv %s", kv.path)
	}
	old, ok := kv.idx[key]
	if !ok {
		return false, nil
	}
	if _, err := kv.appendLocked(opDel, key, nil); err != nil {
		return false, err
	}
	kv.liveBytes -= int64(old.n)
	delete(kv.idx, key)
	return true, nil
}

// Len implements storage.EntityKV.
func (kv *EntityKV) Len() int {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return len(kv.idx)
}

// Bytes implements storage.EntityKV: live payload bytes on disk (the
// page-cache working set, not Go heap).
func (kv *EntityKV) Bytes() int64 {
	kv.mu.RLock()
	defer kv.mu.RUnlock()
	return kv.liveBytes
}

// Range implements storage.EntityKV. The write lock serializes Range against
// remaps; values are passed as mapping slices valid only during the call, so
// fn must copy anything it keeps — the interface contract.
func (kv *EntityKV) Range(fn func(key string, value []byte) bool) error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return fmt.Errorf("disk: range over closed entity kv %s", kv.path)
	}
	if err := kv.remapLocked(); err != nil {
		return err
	}
	for key, loc := range kv.idx {
		if !fn(key, kv.mapped[loc.off:loc.off+int64(loc.n)]) {
			break
		}
	}
	return nil
}

// Close implements storage.EntityKV: sync, unmap, close.
func (kv *EntityKV) Close() error {
	kv.mu.Lock()
	defer kv.mu.Unlock()
	if kv.closed {
		return nil
	}
	kv.closed = true
	var firstErr error
	if err := kv.f.Sync(); err != nil {
		firstErr = err
	}
	if kv.mapped != nil {
		if err := munmapFile(kv.mapped); err != nil && firstErr == nil {
			firstErr = err
		}
		kv.mapped = nil
	}
	if err := kv.f.Close(); err != nil && firstErr == nil {
		firstErr = err
	}
	return firstErr
}
