//go:build linux

package disk

import (
	"os"
	"syscall"
)

// mmapFile maps size bytes of f read-only and shared: writes through the
// file descriptor become visible in the mapping, and the pages live in the
// OS page cache rather than the Go heap. A zero size returns an empty
// (nil) mapping — mmap rejects zero-length maps.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	return syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
}

// munmapFile releases a mapping from mmapFile.
func munmapFile(m []byte) error {
	if m == nil {
		return nil
	}
	return syscall.Munmap(m)
}
