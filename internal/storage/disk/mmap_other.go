//go:build !linux

package disk

import "os"

// Non-linux fallback: "map" the file by reading the valid prefix into one
// buffer. Reads behave identically; the RAM-gating property (payloads in
// page cache, not heap) is linux-only.
func mmapFile(f *os.File, size int64) ([]byte, error) {
	if size == 0 {
		return nil, nil
	}
	buf := make([]byte, size)
	if _, err := f.ReadAt(buf, 0); err != nil {
		return nil, err
	}
	return buf, nil
}

func munmapFile(m []byte) error { return nil }
