// Package memory implements the storage backend the platform shipped with:
// every role held in process memory, sharded or mutex-guarded for concurrent
// use. It registers as "memory" — the default backend — and is the
// behavioral reference the disk backend's byte-identity tests compare
// against. Nothing survives a restart; durability in memory deployments
// comes from the operation log being replayable (or from accepting
// volatility, as tests and examples do).
package memory

import (
	"fmt"
	"sync"

	"saga/internal/storage"
)

// backend is the memory storage backend.
type backend struct{}

func init() { storage.Register("memory", backend{}) }

// Name implements storage.Backend.
func (backend) Name() string { return "memory" }

// Durable implements storage.Backend.
func (backend) Durable() bool { return false }

// OpenRecordLog implements storage.Backend.
func (backend) OpenRecordLog(storage.Options) (storage.RecordLog, error) {
	return NewRecordLog(), nil
}

// OpenBlobStore implements storage.Backend.
func (backend) OpenBlobStore(storage.Options) (storage.BlobStore, error) {
	return NewBlobStore(), nil
}

// OpenEntityKV implements storage.Backend.
func (backend) OpenEntityKV(storage.Options) (storage.EntityKV, error) {
	return NewEntityKV(), nil
}

// OpenPostings implements storage.Backend.
func (backend) OpenPostings(storage.Options) (storage.Postings, error) {
	return NewPostings(), nil
}

// OpenVectors implements storage.Backend.
func (backend) OpenVectors(storage.Options) (storage.Vectors, error) {
	return NewVectors(), nil
}

// RecordLog is the in-memory record log: a slice of payload copies under a
// mutex. It provides ordering and replay but no durability.
type RecordLog struct {
	mu      sync.Mutex
	records [][]byte
	closed  bool
}

// NewRecordLog constructs an empty in-memory record log.
func NewRecordLog() *RecordLog { return &RecordLog{} }

// Append implements storage.RecordLog.
func (l *RecordLog) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("memory: append to closed record log")
	}
	l.records = append(l.records, append([]byte(nil), payload...))
	return nil
}

// Replay implements storage.RecordLog: a record rejected by fn truncates the
// log there (torn-tail semantics, mirroring the durable backends).
func (l *RecordLog) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, rec := range l.records {
		if err := fn(rec); err != nil {
			l.records = l.records[:i]
			return nil
		}
	}
	return nil
}

// Len implements storage.RecordLog.
func (l *RecordLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Close implements storage.RecordLog.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// BlobStore is the in-memory staging store: a map of payload copies under a
// RWMutex, with sequential key generation.
type BlobStore struct {
	mu   sync.RWMutex
	data map[string][]byte
	seq  uint64
}

// NewBlobStore constructs an empty in-memory staging store.
func NewBlobStore() *BlobStore {
	return &BlobStore{data: make(map[string][]byte)}
}

// Stage implements storage.BlobStore.
func (s *BlobStore) Stage(payload []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	key := fmt.Sprintf("staging/%08d", s.seq)
	s.data[key] = payload
	return key, nil
}

// Get implements storage.BlobStore.
func (s *BlobStore) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	p, ok := s.data[key]
	s.mu.RUnlock()
	return p, ok
}

// Delete implements storage.BlobStore.
func (s *BlobStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	return nil
}

// Len implements storage.BlobStore.
func (s *BlobStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Close implements storage.BlobStore.
func (s *BlobStore) Close() error { return nil }
