// Package memory implements the storage backend the platform shipped with:
// every role held in process memory, sharded or mutex-guarded for concurrent
// use. It registers as "memory" — the default backend — and is the
// behavioral reference the disk backend's byte-identity tests compare
// against. Nothing survives a restart; durability in memory deployments
// comes from the operation log being replayable (or from accepting
// volatility, as tests and examples do).
package memory

import (
	"fmt"
	"sync"

	"saga/internal/storage"
)

// backend is the memory storage backend.
type backend struct{}

func init() { storage.Register("memory", backend{}) }

// Name implements storage.Backend.
func (backend) Name() string { return "memory" }

// Durable implements storage.Backend.
func (backend) Durable() bool { return false }

// OpenRecordLog implements storage.Backend.
func (backend) OpenRecordLog(storage.Options) (storage.RecordLog, error) {
	return NewRecordLog(), nil
}

// OpenBlobStore implements storage.Backend.
func (backend) OpenBlobStore(storage.Options) (storage.BlobStore, error) {
	return NewBlobStore(), nil
}

// OpenEntityKV implements storage.Backend.
func (backend) OpenEntityKV(storage.Options) (storage.EntityKV, error) {
	return NewEntityKV(), nil
}

// OpenPostings implements storage.Backend.
func (backend) OpenPostings(storage.Options) (storage.Postings, error) {
	return NewPostings(), nil
}

// OpenVectors implements storage.Backend.
func (backend) OpenVectors(storage.Options) (storage.Vectors, error) {
	return NewVectors(), nil
}

// OpenCheckpoints implements storage.Backend.
func (backend) OpenCheckpoints(storage.Options) (storage.Checkpointer, error) {
	return NewCheckpoints(), nil
}

// RecordLog is the in-memory record log: a slice of payload copies under a
// mutex. It provides ordering and replay but no durability.
type RecordLog struct {
	mu      sync.Mutex
	records [][]byte
	closed  bool
}

// NewRecordLog constructs an empty in-memory record log.
func NewRecordLog() *RecordLog { return &RecordLog{} }

// Append implements storage.RecordLog.
func (l *RecordLog) Append(payload []byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("memory: append to closed record log")
	}
	l.records = append(l.records, append([]byte(nil), payload...))
	return nil
}

// Replay implements storage.RecordLog: a record rejected by fn truncates the
// log there (torn-tail semantics, mirroring the durable backends).
func (l *RecordLog) Replay(fn func(payload []byte) error) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	for i, rec := range l.records {
		if err := fn(rec); err != nil {
			l.records = l.records[:i]
			return nil
		}
	}
	return nil
}

// Compact implements storage.RecordLog: the prefix swap is a slice splice
// under the log mutex, so readers see the old prefix or the new one, never a
// mix.
func (l *RecordLog) Compact(drop int, replacement [][]byte) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return fmt.Errorf("memory: compact closed record log")
	}
	if drop < 0 || drop > len(l.records) {
		return fmt.Errorf("memory: compact drop %d out of range (log has %d records)", drop, len(l.records))
	}
	next := make([][]byte, 0, len(replacement)+len(l.records)-drop)
	for _, rec := range replacement {
		next = append(next, append([]byte(nil), rec...))
	}
	next = append(next, l.records[drop:]...)
	l.records = next
	return nil
}

// Len implements storage.RecordLog.
func (l *RecordLog) Len() int {
	l.mu.Lock()
	defer l.mu.Unlock()
	return len(l.records)
}

// Close implements storage.RecordLog.
func (l *RecordLog) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.closed = true
	return nil
}

// BlobStore is the in-memory staging store: a map of payload copies under a
// RWMutex, with sequential key generation.
type BlobStore struct {
	mu   sync.RWMutex
	data map[string][]byte
	seq  uint64
}

// NewBlobStore constructs an empty in-memory staging store.
func NewBlobStore() *BlobStore {
	return &BlobStore{data: make(map[string][]byte)}
}

// Stage implements storage.BlobStore.
func (s *BlobStore) Stage(payload []byte) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.seq++
	key := fmt.Sprintf("staging/%08d", s.seq)
	s.data[key] = payload
	return key, nil
}

// Get implements storage.BlobStore.
func (s *BlobStore) Get(key string) ([]byte, bool) {
	s.mu.RLock()
	p, ok := s.data[key]
	s.mu.RUnlock()
	return p, ok
}

// Delete implements storage.BlobStore.
func (s *BlobStore) Delete(key string) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.data, key)
	return nil
}

// Len implements storage.BlobStore.
func (s *BlobStore) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.data)
}

// Close implements storage.BlobStore.
func (s *BlobStore) Close() error { return nil }

// Checkpoints is the in-memory checkpoint store: it honors the Checkpointer
// contract within a process (Latest returns the newest Save) but, like every
// memory role, survives nothing. Memory-backend recovery therefore always
// replays from LSN zero — which is exactly the behavior the crash harness
// compares the checkpointed path against.
type Checkpoints struct {
	mu      sync.Mutex
	lsn     uint64
	payload []byte
	ok      bool
}

// NewCheckpoints constructs an empty in-memory checkpoint store.
func NewCheckpoints() *Checkpoints { return &Checkpoints{} }

// Save implements storage.Checkpointer.
func (c *Checkpoints) Save(lsn uint64, payload []byte) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.lsn = lsn
	c.payload = append([]byte(nil), payload...)
	c.ok = true
	return nil
}

// Latest implements storage.Checkpointer.
func (c *Checkpoints) Latest() (uint64, []byte, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if !c.ok {
		return 0, nil, false
	}
	return c.lsn, append([]byte(nil), c.payload...), true
}

// Close implements storage.Checkpointer.
func (c *Checkpoints) Close() error { return nil }
