package memory

import (
	"sync"
	"sync/atomic"
)

// KVShardCount shards the entity KV by key hash so concurrent readers on
// different shards never contend.
const KVShardCount = 64

type kvShard struct {
	mu   sync.RWMutex
	data map[string][]byte
}

// EntityKV is the sharded in-memory entity payload store (the entity index
// implementation the platform shipped with, now behind storage.EntityKV).
type EntityKV struct {
	shards [KVShardCount]*kvShard
	// readLocks counts read-path lock acquisitions (Get, MultiGet), backing
	// the MultiGet benchmark's locks/op metric: grouping a MultiGet by shard
	// takes each touched shard's lock once instead of one lock per key.
	readLocks atomic.Uint64
}

// NewEntityKV constructs an empty sharded entity KV.
func NewEntityKV() *EntityKV {
	s := &EntityKV{}
	for i := range s.shards {
		s.shards[i] = &kvShard{data: make(map[string][]byte)}
	}
	return s
}

// kvShardIndex is FNV-1a over the key, the hash the entity store has always
// sharded by.
func kvShardIndex(key string) uint64 {
	const offset64, prime64 = 14695981039346656037, 1099511628211
	var h uint64 = offset64
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= prime64
	}
	return h % KVShardCount
}

func (s *EntityKV) shardFor(key string) *kvShard {
	return s.shards[kvShardIndex(key)]
}

// Put implements storage.EntityKV.
func (s *EntityKV) Put(key string, value []byte) error {
	v := append([]byte(nil), value...)
	sh := s.shardFor(key)
	sh.mu.Lock()
	sh.data[key] = v
	sh.mu.Unlock()
	return nil
}

// Get implements storage.EntityKV.
func (s *EntityKV) Get(key string) ([]byte, bool, error) {
	sh := s.shardFor(key)
	s.readLocks.Add(1)
	sh.mu.RLock()
	v, ok := sh.data[key]
	sh.mu.RUnlock()
	if !ok {
		return nil, false, nil
	}
	return append([]byte(nil), v...), true, nil
}

// MultiGet implements storage.EntityKV: the requested keys are grouped by
// shard and each touched shard's read lock is taken once — len(distinct
// shards) acquisitions instead of len(keys) — with the copies made inside
// the lock and any decoding left to the caller outside it.
func (s *EntityKV) MultiGet(keys []string) ([][]byte, error) {
	out := make([][]byte, len(keys))
	// Group key positions by shard. The common case touches a handful of
	// shards; a fixed-size bucket table avoids allocating a map per call.
	var buckets [KVShardCount][]int
	for i, key := range keys {
		sh := kvShardIndex(key)
		buckets[sh] = append(buckets[sh], i)
	}
	for sh, idxs := range buckets {
		if len(idxs) == 0 {
			continue
		}
		shard := s.shards[sh]
		s.readLocks.Add(1)
		shard.mu.RLock()
		for _, i := range idxs {
			if v, ok := shard.data[keys[i]]; ok {
				out[i] = append([]byte(nil), v...)
			}
		}
		shard.mu.RUnlock()
	}
	return out, nil
}

// Delete implements storage.EntityKV.
func (s *EntityKV) Delete(key string) (bool, error) {
	sh := s.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	_, ok := sh.data[key]
	delete(sh.data, key)
	return ok, nil
}

// Len implements storage.EntityKV.
func (s *EntityKV) Len() int {
	n := 0
	for _, sh := range s.shards {
		sh.mu.RLock()
		n += len(sh.data)
		sh.mu.RUnlock()
	}
	return n
}

// Bytes implements storage.EntityKV.
func (s *EntityKV) Bytes() int64 {
	var n int64
	for _, sh := range s.shards {
		sh.mu.RLock()
		for _, v := range sh.data {
			n += int64(len(v))
		}
		sh.mu.RUnlock()
	}
	return n
}

// Range implements storage.EntityKV. Each shard is read-locked in turn, so
// the iteration is per-shard consistent, not globally consistent.
func (s *EntityKV) Range(fn func(key string, value []byte) bool) error {
	for _, sh := range s.shards {
		sh.mu.RLock()
		for k, v := range sh.data {
			if !fn(k, v) {
				sh.mu.RUnlock()
				return nil
			}
		}
		sh.mu.RUnlock()
	}
	return nil
}

// Close implements storage.EntityKV.
func (s *EntityKV) Close() error { return nil }

// ReadLocks returns the cumulative read-path lock acquisitions (Get and
// MultiGet), for the MultiGet sharding benchmark.
func (s *EntityKV) ReadLocks() uint64 { return s.readLocks.Load() }
