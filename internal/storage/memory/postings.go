package memory

import (
	"sync"

	"saga/internal/storage"
)

// Postings is the in-memory posting storage the text index shipped with:
// term→doc→frequency maps plus per-document lengths, term lists (for
// deletion), and boosts, under one RWMutex so a Read sees a consistent
// index state.
//
// Snapshot returns an immutable point-in-time view with copy-on-write
// semantics: taking one is O(1), and the first write after a snapshot to a
// given map (top-level maps once per snapshot, each term's posting list
// individually) pays the copy. Snapshot views stay valid and lock-free
// forever.
type Postings struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // term -> docID -> term frequency
	docLen   map[string]int
	docTerms map[string][]string // for deletion
	boost    map[string]float64
	totalLen int

	// epoch counts snapshots; topEpoch / termEpoch record when the top-level
	// maps / each term's posting list were last copied. A writer clones any
	// map whose epoch lags the snapshot epoch before mutating it, so every
	// snapshot's maps are frozen the moment a writer would touch them.
	epoch     uint64
	topEpoch  uint64
	termEpoch map[string]uint64
}

// NewPostings constructs an empty in-memory posting store.
func NewPostings() *Postings {
	return &Postings{
		postings:  make(map[string]map[string]int),
		docLen:    make(map[string]int),
		docTerms:  make(map[string][]string),
		boost:     make(map[string]float64),
		termEpoch: make(map[string]uint64),
	}
}

// cowLocked shallow-copies the top-level maps the first time a writer runs
// after a snapshot, so the snapshot's map headers stay frozen. Values are
// shared: posting lists get their own per-term copy in cowTermLocked, and
// docTerms slices / scalar values are replaced wholesale, never mutated.
func (p *Postings) cowLocked() {
	if p.topEpoch == p.epoch {
		return
	}
	p.topEpoch = p.epoch
	postings := make(map[string]map[string]int, len(p.postings))
	for t, m := range p.postings {
		postings[t] = m
	}
	p.postings = postings
	docLen := make(map[string]int, len(p.docLen))
	for d, l := range p.docLen {
		docLen[d] = l
	}
	p.docLen = docLen
	docTerms := make(map[string][]string, len(p.docTerms))
	for d, ts := range p.docTerms {
		docTerms[d] = ts
	}
	p.docTerms = docTerms
	boost := make(map[string]float64, len(p.boost))
	for d, b := range p.boost {
		boost[d] = b
	}
	p.boost = boost
}

// cowTermLocked returns term's posting list, cloned first if a snapshot
// still references it. Returns nil when the term is unindexed.
func (p *Postings) cowTermLocked(t string) map[string]int {
	m := p.postings[t]
	if m == nil {
		return nil
	}
	if p.termEpoch[t] < p.epoch {
		clone := make(map[string]int, len(m))
		for d, f := range m {
			clone[d] = f
		}
		p.postings[t] = clone
		p.termEpoch[t] = p.epoch
		return clone
	}
	return m
}

// Put implements storage.Postings.
func (p *Postings) Put(doc string, termFreqs map[string]int, length int, boost float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cowLocked()
	p.deleteLocked(doc)
	termList := make([]string, 0, len(termFreqs))
	for t, f := range termFreqs {
		m := p.cowTermLocked(t)
		if m == nil {
			m = make(map[string]int)
			p.postings[t] = m
			p.termEpoch[t] = p.epoch
		}
		m[doc] = f
		termList = append(termList, t)
	}
	p.docTerms[doc] = termList
	p.docLen[doc] = length
	p.totalLen += length
	if boost == 0 {
		boost = 1
	}
	p.boost[doc] = boost
	return nil
}

// Delete implements storage.Postings.
func (p *Postings) Delete(doc string) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.cowLocked()
	return p.deleteLocked(doc), nil
}

func (p *Postings) deleteLocked(doc string) bool {
	terms, ok := p.docTerms[doc]
	if !ok {
		return false
	}
	for _, t := range terms {
		if m := p.cowTermLocked(t); m != nil {
			delete(m, doc)
			if len(m) == 0 {
				delete(p.postings, t)
				delete(p.termEpoch, t)
			}
		}
	}
	p.totalLen -= p.docLen[doc]
	delete(p.docTerms, doc)
	delete(p.docLen, doc)
	delete(p.boost, doc)
	return true
}

// Docs implements storage.Postings.
func (p *Postings) Docs() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.docTerms)
}

// Read implements storage.Postings: fn runs under the store's read lock, so
// it observes one index state end to end.
func (p *Postings) Read(fn func(v storage.PostingsView)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	fn(postingsView{p})
	return nil
}

// Close implements storage.Postings.
func (p *Postings) Close() error { return nil }

// Snapshot returns an immutable point-in-time view of the postings. The
// view is lock-free and stays valid indefinitely: the store copies any map
// the snapshot references before the next write to it (copy-on-write).
func (p *Postings) Snapshot() storage.PostingsView {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.epoch++
	return postingsSnap{
		postings: p.postings,
		docLen:   p.docLen,
		boost:    p.boost,
		totalLen: p.totalLen,
		docs:     len(p.docTerms),
	}
}

// postingsSnap is a frozen storage.PostingsView: its maps are never mutated
// after capture (writers copy-on-write instead), so reads need no lock.
type postingsSnap struct {
	postings map[string]map[string]int
	docLen   map[string]int
	boost    map[string]float64
	totalLen int
	docs     int
}

// Posting implements storage.PostingsView.
func (s postingsSnap) Posting(term string) map[string]int { return s.postings[term] }

// DocLen implements storage.PostingsView.
func (s postingsSnap) DocLen(doc string) int { return s.docLen[doc] }

// TotalLen implements storage.PostingsView.
func (s postingsSnap) TotalLen() int { return s.totalLen }

// Boost implements storage.PostingsView.
func (s postingsSnap) Boost(doc string) float64 { return s.boost[doc] }

// Docs implements storage.PostingsView.
func (s postingsSnap) Docs() int { return s.docs }

// postingsView implements storage.PostingsView over the locked store.
type postingsView struct{ p *Postings }

// Posting implements storage.PostingsView.
func (v postingsView) Posting(term string) map[string]int { return v.p.postings[term] }

// DocLen implements storage.PostingsView.
func (v postingsView) DocLen(doc string) int { return v.p.docLen[doc] }

// TotalLen implements storage.PostingsView.
func (v postingsView) TotalLen() int { return v.p.totalLen }

// Boost implements storage.PostingsView.
func (v postingsView) Boost(doc string) float64 { return v.p.boost[doc] }

// Docs implements storage.PostingsView.
func (v postingsView) Docs() int { return len(v.p.docTerms) }
