package memory

import (
	"sync"

	"saga/internal/storage"
)

// Postings is the in-memory posting storage the text index shipped with:
// term→doc→frequency maps plus per-document lengths, term lists (for
// deletion), and boosts, under one RWMutex so a Read sees a consistent
// index state.
type Postings struct {
	mu       sync.RWMutex
	postings map[string]map[string]int // term -> docID -> term frequency
	docLen   map[string]int
	docTerms map[string][]string // for deletion
	boost    map[string]float64
	totalLen int
}

// NewPostings constructs an empty in-memory posting store.
func NewPostings() *Postings {
	return &Postings{
		postings: make(map[string]map[string]int),
		docLen:   make(map[string]int),
		docTerms: make(map[string][]string),
		boost:    make(map[string]float64),
	}
}

// Put implements storage.Postings.
func (p *Postings) Put(doc string, termFreqs map[string]int, length int, boost float64) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.deleteLocked(doc)
	termList := make([]string, 0, len(termFreqs))
	for t, f := range termFreqs {
		m := p.postings[t]
		if m == nil {
			m = make(map[string]int)
			p.postings[t] = m
		}
		m[doc] = f
		termList = append(termList, t)
	}
	p.docTerms[doc] = termList
	p.docLen[doc] = length
	p.totalLen += length
	if boost == 0 {
		boost = 1
	}
	p.boost[doc] = boost
	return nil
}

// Delete implements storage.Postings.
func (p *Postings) Delete(doc string) (bool, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.deleteLocked(doc), nil
}

func (p *Postings) deleteLocked(doc string) bool {
	terms, ok := p.docTerms[doc]
	if !ok {
		return false
	}
	for _, t := range terms {
		if m := p.postings[t]; m != nil {
			delete(m, doc)
			if len(m) == 0 {
				delete(p.postings, t)
			}
		}
	}
	p.totalLen -= p.docLen[doc]
	delete(p.docTerms, doc)
	delete(p.docLen, doc)
	delete(p.boost, doc)
	return true
}

// Docs implements storage.Postings.
func (p *Postings) Docs() int {
	p.mu.RLock()
	defer p.mu.RUnlock()
	return len(p.docTerms)
}

// Read implements storage.Postings: fn runs under the store's read lock, so
// it observes one index state end to end.
func (p *Postings) Read(fn func(v storage.PostingsView)) error {
	p.mu.RLock()
	defer p.mu.RUnlock()
	fn(postingsView{p})
	return nil
}

// Close implements storage.Postings.
func (p *Postings) Close() error { return nil }

// postingsView implements storage.PostingsView over the locked store.
type postingsView struct{ p *Postings }

// Posting implements storage.PostingsView.
func (v postingsView) Posting(term string) map[string]int { return v.p.postings[term] }

// DocLen implements storage.PostingsView.
func (v postingsView) DocLen(doc string) int { return v.p.docLen[doc] }

// TotalLen implements storage.PostingsView.
func (v postingsView) TotalLen() int { return v.p.totalLen }

// Boost implements storage.PostingsView.
func (v postingsView) Boost(doc string) float64 { return v.p.boost[doc] }

// Docs implements storage.PostingsView.
func (v postingsView) Docs() int { return len(v.p.docTerms) }
