package memory

import (
	"sync"

	"saga/internal/storage"
)

// Vectors is the in-memory vector storage the vector database shipped with:
// id→vector and id→attributes maps under one RWMutex.
type Vectors struct {
	mu    sync.RWMutex
	vecs  map[string][]float64
	attrs map[string]map[string]string
}

// NewVectors constructs an empty in-memory vector store.
func NewVectors() *Vectors {
	return &Vectors{
		vecs:  make(map[string][]float64),
		attrs: make(map[string]map[string]string),
	}
}

// Put implements storage.Vectors.
func (s *Vectors) Put(id string, vec []float64, attrs map[string]string) ([]float64, error) {
	v := append([]float64(nil), vec...)
	s.mu.Lock()
	defer s.mu.Unlock()
	prev := s.vecs[id]
	s.vecs[id] = v
	if attrs != nil {
		a := make(map[string]string, len(attrs))
		for k, val := range attrs {
			a[k] = val
		}
		s.attrs[id] = a
	} else {
		delete(s.attrs, id)
	}
	return prev, nil
}

// Delete implements storage.Vectors.
func (s *Vectors) Delete(id string) ([]float64, bool, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	v, ok := s.vecs[id]
	if !ok {
		return nil, false, nil
	}
	delete(s.vecs, id)
	delete(s.attrs, id)
	return v, true, nil
}

// Get implements storage.Vectors.
func (s *Vectors) Get(id string) ([]float64, error) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.vecs[id]
	if !ok {
		return nil, nil
	}
	return append([]float64(nil), v...), nil
}

// Len implements storage.Vectors.
func (s *Vectors) Len() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.vecs)
}

// Read implements storage.Vectors.
func (s *Vectors) Read(fn func(v storage.VectorsView)) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	fn(vectorsView{s})
	return nil
}

// Close implements storage.Vectors.
func (s *Vectors) Close() error { return nil }

// vectorsView implements storage.VectorsView over the locked store.
type vectorsView struct{ s *Vectors }

// Vector implements storage.VectorsView.
func (v vectorsView) Vector(id string) []float64 { return v.s.vecs[id] }

// Attrs implements storage.VectorsView.
func (v vectorsView) Attrs(id string) map[string]string { return v.s.attrs[id] }

// Range implements storage.VectorsView.
func (v vectorsView) Range(fn func(id string, vec []float64, attrs map[string]string) bool) {
	for id, vec := range v.s.vecs {
		if !fn(id, vec, v.s.attrs[id]) {
			return
		}
	}
}
