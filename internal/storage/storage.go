// Package storage defines the narrow backend contracts behind the Graph
// Engine's storage roles and a registration/resolution registry that makes a
// backend a runtime choice rather than a compile-time import.
//
// The paper's Graph Engine (§3.1) is a federation of *independent storage
// engines* — entity index, search index, analytics store — all deriving
// their state from one shared operation log. This package carves that
// separation into five role interfaces the platform already consumes
// implicitly:
//
//   - RecordLog — the operation log's record I/O (ordered, CRC-framed,
//     torn-tail recoverable append storage; the oplog package layers LSNs,
//     JSON op encoding, and subscriptions on top).
//   - BlobStore — the staging object store for ingest payloads (write-once
//     blobs keyed by generated staging keys).
//   - EntityKV — the entity index's payload KV (serialized entity bytes by
//     entity ID).
//   - Postings — the full-text index's posting-list storage (the BM25
//     scoring logic stays in textindex; backends store term→doc→tf).
//   - Vectors — the vector database's id→vector storage (LSH acceleration
//     stays in vectordb; backends store vectors and attributes).
//
// A Backend bundles one implementation of each role under a name. Backends
// register at init time (storage.Register) and are resolved at runtime by
// name (storage.Resolve), in the style of named-backend runtime resolution:
// the caller picks "memory" or "disk" from a flag, not an import. Backends
// that do not yet provide a durable implementation of a role may delegate
// that role to another backend's implementation (the disk backend keeps
// postings and vectors in memory: those roles index derived state that
// replays from the log, and they do not gate RAM the way staged payloads
// and entity payloads do).
//
// The conformance package (storage/conformance) holds the contract suite
// every registered backend must pass.
package storage

// RecordLog is append-ordered durable record storage: the operation log's
// I/O layer. Appends are atomic at record granularity — a reader never
// observes a half record, because implementations frame records with a
// length+CRC header and drop a torn tail at open (crash-during-append
// recovery). Implementations are safe for concurrent use.
type RecordLog interface {
	// Append durably appends one record. The payload is owned by the caller
	// and copied (or written out) before return.
	Append(payload []byte) error
	// Replay calls fn for every record in append order. A record rejected by
	// fn (fn returns an error) is treated as the start of a torn tail: the
	// log truncates itself to the last accepted record and Replay returns
	// nil. This mirrors crash recovery — a record that fails its integrity
	// check at the layer above (e.g. op decoding) is indistinguishable from
	// tail corruption in an append-only log.
	Replay(fn func(payload []byte) error) error
	// Compact atomically replaces the first drop records with replacement
	// (which may be shorter — compaction conflates per entity and elides
	// tombstones). Records after the first drop are preserved unchanged.
	// The swap is atomic with respect to crashes: a reader reopening the
	// log sees either the old prefix or the new one, never a mix — durable
	// implementations stage the rewrite in fresh segments and flip a
	// manifest. Payload slices are owned by the caller and copied.
	Compact(drop int, replacement [][]byte) error
	// Len returns the number of records currently in the log.
	Len() int
	// Close releases backing resources. Append after Close fails.
	Close() error
}

// Checkpointer stores recovery checkpoints: opaque snapshot payloads keyed by
// the log watermark (LSN) they cover. Recovery loads the latest good
// checkpoint and replays only the log suffix past its watermark, making cold
// start O(suffix) instead of O(log age). Implementations are safe for
// concurrent use; Save is atomic with respect to crashes (a crash mid-save
// leaves the previous latest checkpoint intact and loadable).
type Checkpointer interface {
	// Save durably stores a checkpoint covering every op with LSN <= lsn.
	// The payload is owned by the caller and copied (or written out) before
	// return. Implementations retain at least the latest checkpoint and may
	// discard older ones.
	Save(lsn uint64, payload []byte) error
	// Latest returns the newest intact checkpoint, or ok=false when none
	// exists (or none survived corruption — recovery then replays from LSN
	// zero). The returned payload is the caller's.
	Latest() (lsn uint64, payload []byte, ok bool)
	// Close releases backing resources.
	Close() error
}

// BlobStore is the staging object store for ingest payloads: a durable,
// high-throughput blob store keyed by generated staging key — write once,
// read by any agent, delete after retention. Implementations are safe for
// concurrent use.
type BlobStore interface {
	// Stage durably writes a payload and returns its generated staging key.
	// The store takes ownership of the payload slice. A staging error must
	// surface here: the payload has to exist before the log records an
	// operation referencing it, or replay stalls every agent at that LSN
	// forever.
	Stage(payload []byte) (string, error)
	// Get reads a staged payload. The returned slice is shared with the
	// store and must not be mutated.
	Get(key string) ([]byte, bool)
	// Delete removes a staged payload after retention. Deleting an absent
	// key is not an error; failures to durably record the removal are.
	Delete(key string) error
	// Len returns the number of staged payloads.
	Len() int
	// Close releases backing resources.
	Close() error
}

// EntityKV is the entity index's payload storage: serialized entity bytes
// keyed by entity ID. Implementations are safe for concurrent use and must
// support concurrent readers without contention on disjoint keys.
type EntityKV interface {
	// Put stores (replacing) a value. The value is copied before return.
	Put(key string, value []byte) error
	// Get retrieves a value, or (nil, false, nil) when absent. The returned
	// slice is the caller's (it stays valid after Close and later writes).
	Get(key string) ([]byte, bool, error)
	// MultiGet retrieves several values in one call, aligned with keys:
	// out[i] is nil when keys[i] is absent. Implementations should amortize
	// per-key synchronization (e.g. one lock acquisition per shard, not per
	// key).
	MultiGet(keys []string) ([][]byte, error)
	// Delete removes a value, reporting whether it existed.
	Delete(key string) (bool, error)
	// Len returns the number of stored values.
	Len() int
	// Bytes returns the total stored value size, for capacity monitoring.
	Bytes() int64
	// Range calls fn for every key/value until fn returns false. The order
	// is unspecified. The value slice is only valid during the call.
	Range(fn func(key string, value []byte) bool) error
	// Close releases backing resources.
	Close() error
}

// Postings is the full-text index's storage: per-document posting lists,
// document lengths, and static boosts. The ranking logic (BM25) lives in the
// textindex package; this interface is only the state it scores over.
// Implementations are safe for concurrent use.
type Postings interface {
	// Put stores (replacing) one document's postings: its term frequencies,
	// token length, and static rank boost.
	Put(doc string, termFreqs map[string]int, length int, boost float64) error
	// Delete removes a document, reporting whether it existed.
	Delete(doc string) (bool, error)
	// Docs returns the number of stored documents.
	Docs() int
	// Read runs fn with a consistent read view: no Put/Delete is observed
	// mid-fn, so a scorer sees one index state end to end.
	Read(fn func(v PostingsView)) error
	// Close releases backing resources.
	Close() error
}

// PostingsView is a consistent read view of a Postings store, valid only
// inside Postings.Read. Returned maps are shared and must not be mutated.
type PostingsView interface {
	// Posting returns term's doc→frequency posting list (nil when the term
	// is unindexed).
	Posting(term string) map[string]int
	// DocLen returns doc's token length.
	DocLen(doc string) int
	// TotalLen returns the sum of all document lengths.
	TotalLen() int
	// Boost returns doc's static rank boost (1 when unset).
	Boost(doc string) float64
	// Docs returns the number of stored documents.
	Docs() int
}

// Vectors is the vector database's storage: vectors with optional string
// attributes by id. ANN acceleration (LSH) lives in the vectordb package;
// this interface is only the vector state. Implementations are safe for
// concurrent use.
type Vectors interface {
	// Put stores (replacing) a vector with optional attributes, returning
	// the replaced vector (nil when the id was absent) so index structures
	// layered above can unindex it.
	Put(id string, vec []float64, attrs map[string]string) ([]float64, error)
	// Delete removes a vector, returning it (nil, false when absent).
	Delete(id string) ([]float64, bool, error)
	// Get returns a copy of the stored vector, or nil.
	Get(id string) ([]float64, error)
	// Len returns the number of stored vectors.
	Len() int
	// Read runs fn with a consistent read view: no Put/Delete is observed
	// mid-fn.
	Read(fn func(v VectorsView)) error
	// Close releases backing resources.
	Close() error
}

// VectorsView is a consistent read view of a Vectors store, valid only
// inside Vectors.Read. Returned slices/maps are shared and must not be
// mutated.
type VectorsView interface {
	// Vector returns the stored vector (nil when absent).
	Vector(id string) []float64
	// Attrs returns the stored attributes (nil when none).
	Attrs(id string) map[string]string
	// Range calls fn for every stored vector until fn returns false.
	Range(fn func(id string, vec []float64, attrs map[string]string) bool)
}
