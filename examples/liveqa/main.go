// Liveqa: the live knowledge graph scenario (§4) — streaming sports scores
// linked against stable team entities, queried through intents with
// multi-turn context, plus a curation hot fix.
package main

import (
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/live"
	"saga/internal/triple"
	"saga/internal/workload"
)

func main() {
	platform, err := core.Open(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// Stable knowledge: teams and their cities.
	teams := []string{"Northfield Comets", "Lakewood Pilots", "Eastport Giants"}
	for i, e := range workload.TeamsGraph(teams) {
		e.Add(triple.New("", "plays_in_city", triple.Ref(triple.EntityID(fmt.Sprintf("kg:CITY%d", i)))).WithSource("sportsdb", 0.9))
		platform.KG.Graph.Put(e)
		platform.GraphReplica.Put(e)
		city := triple.NewEntity(triple.EntityID(fmt.Sprintf("kg:CITY%d", i)))
		city.Add(triple.New("", triple.PredType, triple.String("city")).WithSource("sportsdb", 0.9))
		city.Add(triple.New("", triple.PredName, triple.String(workload.CityName(i))).WithSource("sportsdb", 0.9))
		platform.KG.Graph.Put(city)
		platform.GraphReplica.Put(city)
	}
	platform.RefreshServing()
	platform.BuildNERD()

	// Stream score updates; mentions resolve to the stable teams.
	events := workload.StreamSpec{Games: 2, Updates: 12, Teams: teams, Seed: 7}.Events()
	for _, ev := range events {
		if _, err := platform.LiveConstructor.Consume(ev); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("live KG: %d entities after %d stream updates\n\n", platform.Live.Len(), len(events))

	// Ad-hoc KGQ over streaming + stable data: current games of a team.
	res, err := platform.Query(`entity(type="sports_team", name="Northfield Comets") | in("home_team") | attr("game_status")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Comets home game status:", res.Texts())

	// Intents with multi-turn context (the §4.2 conversation pattern).
	platform.Intents.RegisterIntent("PlaysIn",
		live.Route{RequiredType: "sports_team", Predicate: "plays_in_city"})
	session := platform.Intents.NewSession()
	a1, err := session.Handle(live.Intent{Name: "PlaysIn", Args: []string{"Northfield Comets"}})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Where do the Comets play? ->", a1.Texts)
	a2, err := session.Handle(live.Intent{Args: []string{"Lakewood Pilots"}}) // "How about the Pilots?"
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("How about the Pilots?    ->", a2.Texts)

	// Curation: quarantine a vandalized score and hot fix it.
	gameID := live.LiveID("sportsfeed", "game0")
	game := platform.Live.Get(gameID)
	var scoreFact triple.Triple
	for _, t := range game.Triples {
		if t.Predicate == "home_score" {
			scoreFact = t
		}
	}
	if err := platform.Curation.Decide(platform.Live, live.Decision{
		Kind: live.DecisionEdit, Entity: gameID, Fact: scoreFact, NewValue: triple.Int(42),
	}); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter curation hot fix, home score = %d\n",
		platform.Live.Get(gameID).First("home_score").Int64())
}
