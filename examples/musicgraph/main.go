// Musicgraph: the music-vertical scenario the paper's evaluation centers on.
// Two overlapping music sources are deduplicated and fused into canonical
// entities, entity-centric views (the Figure 8 views) are computed on the
// analytics store, entity importance ranks the catalog, and KG embeddings
// impute missing facts.
package main

import (
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/embed"
	"saga/internal/importance"
	"saga/internal/store/analytics"
	"saga/internal/triple"
	"saga/internal/views"
	"saga/internal/workload"
)

func main() {
	platform, err := core.Open(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// Two sources cover overlapping slices of the same artist universe:
	// cross-source linking consolidates them (src2's records carry typos).
	src1 := workload.SourceSpec{Name: "catalogA", Offset: 0, Count: 120, RichFacts: 2, Seed: 1}
	src2 := workload.SourceSpec{Name: "catalogB", Offset: 60, Count: 120, TypoRate: 0.15, RichFacts: 2, Seed: 2}
	for _, spec := range []workload.SourceSpec{src1, src2} {
		stats, err := platform.ConsumeDelta(spec.Delta())
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println("fused:", stats)
	}
	st := platform.Stats()
	fmt.Printf("catalog: %d canonical entities from %d source records\n\n", st.Graph.Entities, st.Links)

	// Register the entity-features view and a people view on the analytics
	// store, then materialize both at a checkpoint (shared dependencies are
	// computed once — the §3.2 reuse optimization).
	exec := analytics.HashExecutor{}
	must := func(err error) {
		if err != nil {
			log.Fatal(err)
		}
	}
	must(platform.ViewCatalog.Register(views.Definition{
		Name: "entity-features", Engine: "analytics",
		Create: func(ctx *views.Context) error {
			store := analytics.FromGraph(ctx.Graph)
			feats := exec.Join(store.DegreeRelation(exec), store.InDegreeRelation(exec), "subj", "subj")
			ctx.SetArtifact("entity-features", feats)
			return nil
		},
	}))
	must(platform.ViewCatalog.Register(views.Definition{
		Name: "people-view", Engine: "analytics", DependsOn: []string{"entity-features"},
		Create: func(ctx *views.Context) error {
			store := analytics.FromGraph(ctx.Graph)
			rel, err := analytics.BuildEntityView(store, analytics.EntityViewSpec{
				Name: "people", Type: "human",
				Predicates: []string{triple.PredName, "occupation"},
				Enrich:     []analytics.Enrichment{{Path: []string{"birth_place", triple.PredName}, As: "birth_city"}},
			}, exec)
			if err != nil {
				return err
			}
			ctx.SetArtifact("people-view", rel)
			return nil
		},
	}))
	run, err := platform.Checkpoint()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("views materialized: %v in %v\n\n", run.Materialized, run.Duration)

	// Importance ranking over the fused graph.
	scores := importance.Compute(platform.GraphReplica, importance.Options{})
	fmt.Println("top entities by structural importance:")
	for i, id := range importance.Ranked(scores)[:5] {
		e := platform.GraphReplica.Get(id)
		s := scores[id]
		fmt.Printf("  %d. %-24s imp=%.3f in=%d identities=%d\n",
			i+1, e.Name(), s.Importance, s.InDegree, s.Identities)
	}

	// Embeddings: train TransE on the fused graph and impute birth places.
	es := embed.EdgesFromGraph(platform.GraphReplica)
	em, err := embed.Train(es, embed.TrainOptions{Kind: embed.TransE, Dim: 24, Epochs: 15, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	db, err := embed.LoadVectorDB(em, func(id triple.EntityID) string {
		if e := platform.GraphReplica.Get(id); e != nil {
			return e.Type()
		}
		return ""
	})
	if err != nil {
		log.Fatal(err)
	}
	subject := es.Entities[0]
	suggested, err := embed.Impute(em, db, subject, "birth_place", 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nimputation candidates for <%s, birth_place, ?>:\n", subject)
	for _, f := range suggested {
		name := ""
		if e := platform.GraphReplica.Get(f.Object); e != nil {
			name = e.Name()
		}
		fmt.Printf("  %-14s %-20s score=%.3f\n", f.Object, name, f.Score)
	}
}
