// Quickstart: ingest one CSV source into the knowledge platform, serve it,
// and ask a question through the live KGQ engine — the minimal end-to-end
// path of Figure 1 (ingestion → construction → graph engine → live serving).
package main

import (
	"fmt"
	"log"
	"strings"

	"saga/internal/core"
	"saga/internal/ingest"
	"saga/internal/triple"
)

func main() {
	platform, err := core.Open(core.Options{})
	if err != nil {
		log.Fatal(err)
	}

	// A provider publishes artists as CSV. The Source config is the whole
	// self-serve onboarding surface: importer + transform + PGF alignment.
	source := &ingest.Source{
		Name:     "musicdb",
		Importer: ingest.CSVImporter{},
		Transform: ingest.TransformConfig{
			IDColumn:    "id",
			MultiValued: []string{"genres"},
		},
		Align: ingest.AlignConfig{
			EntityType: "music_artist",
			Trust:      0.9,
			PGFs: []ingest.PGF{
				{Target: "name", Sources: []string{"name"}, Mode: ingest.ModeCopy},
				{Target: "genre", Sources: []string{"genres"}, Mode: ingest.ModeCopy},
				{Target: "popularity", Sources: []string{"pop"}, Mode: ingest.ModeCopy, Kind: triple.KindFloat},
			},
		},
	}
	data := `id,name,genres,pop
a1,Mira Solane,pop|soul,0.93
a2,Dax Verro,rock,0.71
a3,Lena Quoss,jazz|soul,0.55
`
	stats, err := platform.IngestSource(source, strings.NewReader(data))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("construction:", stats)

	// Serve the stable KG through the live engine and query it with KGQ.
	platform.RefreshServing()
	res, err := platform.Query(`entity(type="music_artist") | filter("genre", eq="soul") | rank() | attr("name")`)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("soul artists by importance:", res.Texts())

	st := platform.Stats()
	fmt.Printf("kg: %d entities, %d facts, oplog lsn %d\n", st.Graph.Entities, st.Graph.Facts, st.LogLSN)
}
