// Annotate: semantic annotation with NERD (§6.3) — text snippets are tagged
// with KG entities, showing context-driven disambiguation of an ambiguous
// mention (the paper's Hanover/Dartmouth example) and enrichment with
// importance scores and related entities.
package main

import (
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/importance"
	"saga/internal/nerd"
	"saga/internal/triple"
)

func main() {
	platform, err := core.Open(core.Options{})
	if err != nil {
		log.Fatal(err)
	}
	// A small world with two Hanovers: only relational context separates
	// them.
	put := func(id, typ, name, desc string, facts map[string]triple.Value, aliases ...string) {
		e := triple.NewEntity(triple.EntityID(id))
		add := func(p string, v triple.Value) { e.Add(triple.New("", p, v).WithSource("wiki", 0.9)) }
		add(triple.PredType, triple.String(typ))
		add(triple.PredName, triple.String(name))
		for _, a := range aliases {
			add(triple.PredAlias, triple.String(a))
		}
		if desc != "" {
			add("description", triple.String(desc))
		}
		for p, v := range facts {
			add(p, v)
		}
		platform.KG.Graph.Put(e)
		platform.GraphReplica.Put(e)
	}
	put("kg:HanNH", "city", "Hanover", "college town in New Hampshire", nil, "Hanover, New Hampshire")
	put("kg:HanDE", "city", "Hanover", "large city in Germany", map[string]triple.Value{
		"located_in": triple.Ref("kg:DE"),
	}, "Hannover")
	put("kg:DE", "country", "Germany", "country in europe", nil)
	put("kg:Dart", "school", "Dartmouth College", "ivy league college", map[string]triple.Value{
		"located_in": triple.Ref("kg:HanNH"),
	}, "Dartmouth")
	for i := 0; i < 4; i++ {
		put(fmt.Sprintf("kg:Org%d", i), "organization", fmt.Sprintf("trade fair %d", i), "",
			map[string]triple.Value{"located_in": triple.Ref("kg:HanDE")})
	}

	stack := platform.BuildNERD()
	scores := importance.Compute(platform.GraphReplica, importance.Options{})

	snippets := []struct{ mention, context string }{
		{"Hanover", "We visited downtown Hanover after spending time at Dartmouth College"},
		{"Hanover", "The trade fair brought thousands of visitors to Hanover in Germany"},
		{"Dartmouth", "Dartmouth announced a new engineering program"},
		{"Atlantis", "The lost city of Atlantis was never found"},
	}
	for _, s := range snippets {
		pred := stack.Annotate(nerd.Mention{Text: s.mention, Context: s.context})
		fmt.Printf("%q in %q\n", s.mention, s.context)
		if !pred.OK {
			fmt.Printf("  -> rejected (best confidence %.2f)\n\n", pred.Confidence)
			continue
		}
		e := platform.GraphReplica.Get(pred.Entity)
		fmt.Printf("  -> %s (%s) confidence=%.2f importance=%.3f\n",
			pred.Entity, e.First("description").Text(), pred.Confidence, scores[pred.Entity].Importance)
		// Semantic enrichment: related entities from the KG.
		if rec, ok := stack.View.Record(pred.Entity); ok && len(rec.Relations) > 0 {
			fmt.Printf("  related: %s %s\n", rec.Relations[0].Predicate, rec.Relations[0].TargetName)
		}
		fmt.Println()
	}
}
