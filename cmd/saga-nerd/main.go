// Command saga-nerd annotates text from stdin with KG entities: each input
// line is treated as a context sentence, capitalized token runs become
// candidate mentions, and the NERD stack resolves them against a synthetic
// KG built at startup. Output lists the resolved entities per line.
package main

import (
	"bufio"
	"fmt"
	"log"
	"os"
	"strings"

	"saga/internal/core"
	"saga/internal/nerd"
	"saga/internal/workload"
)

func main() {
	p, err := core.Open(core.Options{})
	if err != nil {
		log.Fatalf("saga-nerd: %v", err)
	}
	if _, err := p.ConsumeDelta(workload.SourceSpec{Name: "people", Count: 300, Seed: 1}.Delta()); err != nil {
		log.Fatalf("saga-nerd: %v", err)
	}
	stack := p.BuildNERD()
	fmt.Fprintln(os.Stderr, "saga-nerd: reading lines from stdin (capitalized runs become mentions)")
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := sc.Text()
		mentions := extractMentions(line)
		if len(mentions) == 0 {
			fmt.Println("(no mentions)")
			continue
		}
		for _, m := range mentions {
			pred := stack.Annotate(nerd.Mention{Text: m, Context: line})
			if pred.OK {
				fmt.Printf("  %-24s -> %s (%.2f)\n", m, pred.Entity, pred.Confidence)
			} else {
				fmt.Printf("  %-24s -> (rejected, best %.2f)\n", m, pred.Confidence)
			}
		}
	}
	if err := sc.Err(); err != nil {
		log.Fatalf("saga-nerd: %v", err)
	}
}

// extractMentions finds maximal runs of capitalized tokens.
func extractMentions(line string) []string {
	var out []string
	var run []string
	flush := func() {
		if len(run) > 0 {
			out = append(out, strings.Join(run, " "))
			run = nil
		}
	}
	for _, tok := range strings.Fields(line) {
		trimmed := strings.Trim(tok, ".,!?;:\"'")
		if trimmed != "" && trimmed[0] >= 'A' && trimmed[0] <= 'Z' {
			run = append(run, trimmed)
		} else {
			flush()
		}
	}
	flush()
	return out
}
