// Command saga-vet is the platform's invariant checker: a go/analysis
// multichecker bundling the analyzers under internal/lint, which turn the
// prose contracts of docs/INVARIANTS.md into diagnostics that fail the
// build.
//
// It speaks the `go vet -vettool` unitchecker protocol, which is how CI
// runs it:
//
//	go build -o /tmp/saga-vet ./cmd/saga-vet
//	go vet -vettool=/tmp/saga-vet ./...
//
// For convenience it also accepts package patterns directly — `go run
// ./cmd/saga-vet ./...` re-execs `go vet` with itself as the vettool, so
// one command works locally without a manual build step.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"saga/internal/lint/budgetgo"
	"saga/internal/lint/errdrop"
	"saga/internal/lint/locksafe"
	"saga/internal/lint/sharedmut"
)

func main() {
	// Under `go vet -vettool` the driver invokes us with flags (-V=full
	// for the version handshake, analyzer flags) and a *.cfg file per
	// package; hand that protocol to the unitchecker. A bare package
	// pattern is a human asking to check packages: re-exec through go vet
	// with ourselves as the vettool.
	args := os.Args[1:]
	if len(args) > 0 && (strings.HasPrefix(args[0], "-") || strings.HasSuffix(args[0], ".cfg")) {
		unitchecker.Main(sharedmut.Analyzer, budgetgo.Analyzer, errdrop.Analyzer, locksafe.Analyzer)
		return
	}
	self, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "saga-vet: locating own binary: %v\n", err)
		os.Exit(2)
	}
	if len(args) == 0 {
		args = []string{"./..."}
	}
	cmd := exec.Command("go", append([]string{"vet", "-vettool=" + self}, args...)...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			os.Exit(ee.ExitCode())
		}
		fmt.Fprintf(os.Stderr, "saga-vet: %v\n", err)
		os.Exit(2)
	}
}
