// Command saga-serve builds a KG from synthetic sources and serves it over
// HTTP: GET /query?q=<KGQ> executes a live graph query, GET /entity?id=<id>
// retrieves an entity payload, GET /search?q=<text> runs ranked text search,
// and GET /stats reports platform statistics.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"

	"saga/internal/core"
	"saga/internal/triple"
	"saga/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	oplogPath := flag.String("oplog", "", "durable operation log path (empty = memory)")
	backend := flag.String("backend", "", "storage backend (memory, disk; empty = memory)")
	dataDir := flag.String("data", "", "data directory for a durable backend (required with -backend=disk)")
	flag.Parse()

	p, err := core.New(core.Options{OplogPath: *oplogPath, Backend: *backend, DataDir: *dataDir})
	if err != nil {
		log.Fatalf("saga-serve: %v", err)
	}
	defer p.Close()
	for s := 0; s < 3; s++ {
		spec := workload.SourceSpec{
			Name: fmt.Sprintf("src%02d", s), Offset: s * 100, Count: 200,
			Seed: int64(s + 1), RichFacts: 2,
		}
		if _, err := p.ConsumeDelta(spec.Delta()); err != nil {
			log.Fatalf("saga-serve: %v", err)
		}
	}
	p.RefreshServing()
	p.BuildNERD()

	writeJSON := func(w http.ResponseWriter, v any) {
		w.Header().Set("Content-Type", "application/json")
		if err := json.NewEncoder(w).Encode(v); err != nil {
			log.Printf("saga-serve: encode: %v", err)
		}
	}
	http.HandleFunc("/query", func(w http.ResponseWriter, r *http.Request) {
		q := r.URL.Query().Get("q")
		res, err := p.Query(q)
		if err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		writeJSON(w, map[string]any{"ids": res.IDs, "values": res.Texts()})
	})
	http.HandleFunc("/entity", func(w http.ResponseWriter, r *http.Request) {
		id := triple.EntityID(r.URL.Query().Get("id"))
		e := p.Live.Get(id)
		if e == nil {
			http.Error(w, "not found", http.StatusNotFound)
			return
		}
		writeJSON(w, e)
	})
	http.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Live.SearchText(r.URL.Query().Get("q"), 10))
	})
	http.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, p.Stats())
	})
	log.Printf("saga-serve: listening on %s (try /query?q=entity(type=%%22human%%22)|limit(3))", *addr)
	log.Fatal(http.ListenAndServe(*addr, nil))
}
