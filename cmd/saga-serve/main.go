// Command saga-serve builds a KG from synthetic sources and serves it over
// HTTP through the production serving tier (internal/serve): versioned
// /v1/query, /v1/entity, /v1/search, /v1/stats, and /v1/healthz routes with
// snapshot-isolated reads, replica routing, and plan/result caching.
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"saga/internal/core"
	"saga/internal/serve"
	"saga/internal/workload"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	durDir := flag.String("durable", "", "durability directory for the memory backend (oplog + staging + checkpoints; empty = volatile)")
	backend := flag.String("backend", "", "storage backend (memory, disk; empty = memory)")
	dataDir := flag.String("data", "", "data directory for a durable backend (required with -backend=disk)")
	replicas := flag.Int("replicas", 1, "live serving replicas (reads route across them)")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request handling timeout")
	flag.Parse()

	p, err := core.Open(core.Options{
		Storage:    core.StorageOptions{Backend: *backend, DataDir: *dataDir},
		Durability: core.DurabilityOptions{Dir: *durDir},
		Serving:    core.ServingOptions{LiveReplicas: *replicas},
	})
	if err != nil {
		log.Fatalf("saga-serve: %v", err)
	}
	defer p.Close()
	for s := 0; s < 3; s++ {
		spec := workload.SourceSpec{
			Name: fmt.Sprintf("src%02d", s), Offset: s * 100, Count: 200,
			Seed: int64(s + 1), RichFacts: 2,
		}
		if _, err := p.ConsumeDelta(spec.Delta()); err != nil {
			log.Fatalf("saga-serve: %v", err)
		}
	}
	p.RefreshServing()
	p.BuildNERD()

	srv := serve.New(p, serve.Options{Addr: *addr, RequestTimeout: *timeout})
	log.Printf("saga-serve: listening on %s (try /v1/query?q=entity(type=%%22human%%22)|limit(3))", *addr)
	if err := srv.ListenAndServe(); err != nil {
		log.Fatalf("saga-serve: %v", err)
	}
}
