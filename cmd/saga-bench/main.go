// Command saga-bench regenerates every table and figure of the paper's
// evaluation as text output: Figure 8 (view computation), the §3.2 view
// reuse claim, Figure 12 (KG growth), Figure 14 (NERD), live-engine latency,
// learned-similarity recall, embedding training IO, and the construction
// ablations. Run with -only to select one experiment.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"saga/internal/experiments"
)

func main() {
	only := flag.String("only", "", "run only the named experiment (fig8, reuse, fig12, fig14a, fig14b, latency, simrecall, embedding, construction, indexedlinking, batchedfusion, standingfeed, partitionedingest, hotkeyskew, storagebackends, recovery, graphstore, serving, blocking, resolution, volatile, pruning)")
	workers := flag.Int("workers", 0, "worker count for the construction/resolution/indexed-linking ablations (0 = GOMAXPROCS)")
	flag.Parse()

	runs := []struct {
		name string
		fn   func() (fmt.Stringer, error)
	}{
		{"fig8", func() (fmt.Stringer, error) { return experiments.Fig8(experiments.Fig8Spec{}) }},
		{"reuse", func() (fmt.Stringer, error) { return experiments.ViewReuse() }},
		{"fig12", func() (fmt.Stringer, error) { return experiments.Fig12() }},
		{"fig14a", func() (fmt.Stringer, error) { return experiments.Fig14a(), nil }},
		{"fig14b", func() (fmt.Stringer, error) { return experiments.Fig14b(), nil }},
		{"latency", func() (fmt.Stringer, error) { return experiments.LiveLatency(0, 0) }},
		{"simrecall", func() (fmt.Stringer, error) { return experiments.LearnedSimilarityRecall(), nil }},
		{"embedding", func() (fmt.Stringer, error) { return experiments.EmbeddingTraining() }},
		{"construction", func() (fmt.Stringer, error) { return experiments.ConstructionPipeline(*workers) }},
		{"indexedlinking", func() (fmt.Stringer, error) { return experiments.IndexedLinking(*workers) }},
		{"batchedfusion", func() (fmt.Stringer, error) { return experiments.BatchedFusion(*workers) }},
		{"standingfeed", func() (fmt.Stringer, error) { return experiments.StandingFeed(*workers) }},
		{"partitionedingest", func() (fmt.Stringer, error) { return experiments.PartitionedIngest(*workers) }},
		{"hotkeyskew", func() (fmt.Stringer, error) { return experiments.HotKeySkew(*workers) }},
		{"storagebackends", func() (fmt.Stringer, error) { return experiments.StorageBackends(*workers) }},
		{"recovery", func() (fmt.Stringer, error) { return experiments.RecoveryColdStart(*workers) }},
		{"graphstore", func() (fmt.Stringer, error) { return experiments.GraphStore() }},
		{"serving", func() (fmt.Stringer, error) { r, err := experiments.ServeUnderIngest(0, 0); return r, err }},
		{"blocking", func() (fmt.Stringer, error) { return experiments.BlockingAblation(), nil }},
		{"resolution", func() (fmt.Stringer, error) { return experiments.ResolutionAblation(*workers), nil }},
		{"volatile", func() (fmt.Stringer, error) { return experiments.VolatileOverwrite() }},
		{"pruning", func() (fmt.Stringer, error) { return experiments.CandidatePruning(), nil }},
	}
	ran := 0
	for _, r := range runs {
		if *only != "" && r.name != *only {
			continue
		}
		ran++
		fmt.Printf("=== %s ===\n", r.name)
		res, err := r.fn()
		if err != nil {
			fmt.Fprintf(os.Stderr, "saga-bench: %s: %v\n", r.name, err)
			os.Exit(1)
		}
		out := res.String()
		fmt.Print(out)
		if !strings.HasSuffix(out, "\n") {
			fmt.Println()
		}
		fmt.Println()
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "saga-bench: unknown experiment %q\n", *only)
		os.Exit(2)
	}
}
