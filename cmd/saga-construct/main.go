// Command saga-construct runs batch knowledge construction over generated
// synthetic sources: per-source ingestion deltas flow through linking,
// object resolution, and fusion into the KG, and the resulting graph
// statistics are printed. It demonstrates the continuous-construction path
// end to end, including a second incremental round of updates.
package main

import (
	"flag"
	"fmt"
	"log"

	"saga/internal/core"
	"saga/internal/ingest"
	"saga/internal/workload"
)

func main() {
	sources := flag.Int("sources", 4, "number of synthetic sources")
	perSource := flag.Int("entities", 200, "entities per source")
	overlap := flag.Int("overlap", 100, "universe overlap between consecutive sources")
	oplogPath := flag.String("oplog", "", "durable operation log path (empty = memory)")
	workers := flag.Int("workers", 0, "intra-delta construction workers (0 = GOMAXPROCS, 1 = sequential)")
	fullScan := flag.Bool("fullscan", false, "link by scanning the full per-type KG view instead of probing the incremental block index")
	perEntity := flag.Bool("perentity", false, "fuse payload entities one graph round-trip at a time instead of batching per target KG entity")
	flag.Parse()

	p, err := core.New(core.Options{OplogPath: *oplogPath, Workers: *workers, FullScanLinking: *fullScan, PerEntityFusion: *perEntity})
	if err != nil {
		log.Fatalf("saga-construct: %v", err)
	}
	fmt.Printf("constructing KG from %d sources (%d entities each, overlap %d)\n",
		*sources, *perSource, *overlap)
	for s := 0; s < *sources; s++ {
		spec := workload.SourceSpec{
			Name:    fmt.Sprintf("src%02d", s),
			Offset:  s * (*perSource - *overlap),
			Count:   *perSource,
			DupRate: 0.05, TypoRate: 0.1, RichFacts: 2,
			Seed: int64(s + 1),
		}
		stats, err := p.ConsumeDelta(spec.Delta())
		if err != nil {
			log.Fatalf("saga-construct: %v", err)
		}
		fmt.Printf("  %s\n", stats)
	}
	// Incremental round: 5% of source 0 changes.
	changed := workload.SourceSpec{
		Name: "src00", Offset: 0, Count: *perSource / 20,
		Seed: 999, RichFacts: 2,
	}
	stats, err := p.ConsumeDelta(ingest.Delta{Source: "src00", Updated: changed.Entities()[:*perSource/20]})
	if err != nil {
		log.Fatalf("saga-construct: %v", err)
	}
	fmt.Printf("incremental round: %s\n", stats)

	conflicts := p.Pipeline.DrainConflicts()
	st := p.Stats()
	fmt.Printf("\nfinal KG: %d entities, %d facts, %d types, %d sources, %d links, log lsn %d, %d conflicts curated\n",
		st.Graph.Entities, st.Graph.Facts, st.Graph.Types, st.Graph.Sources, st.Links, st.LogLSN, len(conflicts))
	if !*fullScan {
		fmt.Printf("block index: %d entities, %d keys across %d types; %d probes, %d refreshes\n",
			st.BlockIndex.Entities, st.BlockIndex.Keys, st.BlockIndex.Types, st.BlockIndex.Probes, st.BlockIndex.Refreshes)
	}
	fmt.Printf("fusion: %d commits fused %d payloads into %d targets (%.1f payloads/target, perentity=%v)\n",
		st.Fusion.Commits, st.Fusion.Payloads, st.Fusion.Targets,
		float64(st.Fusion.Payloads)/float64(max(st.Fusion.Targets, 1)), *perEntity)
}
