// Command saga-construct runs batch knowledge construction over generated
// synthetic sources: per-source ingestion deltas flow through linking,
// object resolution, and fusion into the KG, and the resulting graph
// statistics are printed. It demonstrates the continuous-construction path
// end to end, including a second incremental round of updates.
package main

import (
	"flag"
	"fmt"
	"log"

	"saga/internal/construct"
	"saga/internal/core"
	"saga/internal/ingest"
	"saga/internal/workload"
)

func main() {
	sources := flag.Int("sources", 4, "number of synthetic sources")
	perSource := flag.Int("entities", 200, "entities per source")
	overlap := flag.Int("overlap", 100, "universe overlap between consecutive sources")
	durDir := flag.String("durable", "", "durability directory for the memory backend (oplog + staging + checkpoints; empty = volatile)")
	backend := flag.String("backend", "", "storage backend (memory, disk; empty = memory)")
	dataDir := flag.String("data", "", "data directory for a durable backend (required with -backend=disk)")
	workers := flag.Int("workers", 0, "intra-delta construction workers (0 = GOMAXPROCS, 1 = sequential)")
	fullScan := flag.Bool("fullscan", false, "link by scanning the full per-type KG view instead of probing the incremental block index")
	perEntity := flag.Bool("perentity", false, "fuse payload entities one graph round-trip at a time instead of batching per target KG entity")
	feedMode := flag.Bool("feed", false, "stream sources through the standing ingestion feed (async ordered publish) instead of synchronous per-delta consumes")
	partitions := flag.Int("partitions", 1, "partition construction across N type-hash-routed pipeline instances (1 = single pipeline)")
	flag.Parse()

	p, err := core.Open(core.Options{
		Storage: core.StorageOptions{Backend: *backend, DataDir: *dataDir},
		Construction: core.ConstructionOptions{
			Workers:         *workers,
			FullScanLinking: *fullScan,
			PerEntityFusion: *perEntity,
			Partitions:      *partitions,
		},
		Durability: core.DurabilityOptions{Dir: *durDir},
	})
	if err != nil {
		log.Fatalf("saga-construct: %v", err)
	}
	defer p.Close()
	fmt.Printf("constructing KG from %d sources (%d entities each, overlap %d, feed=%v)\n",
		*sources, *perSource, *overlap, *feedMode)
	deltas := make([]ingest.Delta, 0, *sources+1)
	for s := 0; s < *sources; s++ {
		spec := workload.SourceSpec{
			Name:    fmt.Sprintf("src%02d", s),
			Offset:  s * (*perSource - *overlap),
			Count:   *perSource,
			DupRate: 0.05, TypoRate: 0.1, RichFacts: 2,
			Seed: int64(s + 1),
		}
		deltas = append(deltas, spec.Delta())
	}
	// Incremental round: 5% of source 0 changes.
	changed := workload.SourceSpec{
		Name: "src00", Offset: 0, Count: *perSource / 20,
		Seed: 999, RichFacts: 2,
	}
	deltas = append(deltas, ingest.Delta{Source: "src00", Updated: changed.Entities()[:*perSource/20]})

	if *feedMode {
		// Streaming mode: every delta is its own batch on the standing feed;
		// the commit loop starts the next source the moment the previous
		// one's last commit lands, while publishing trails asynchronously.
		// Each source still links against every previously committed source,
		// exactly as the synchronous loop below.
		f, err := p.Feed(core.FeedOptions{})
		if err != nil {
			log.Fatalf("saga-construct: %v", err)
		}
		results := make([]<-chan construct.BatchResult, 0, len(deltas))
		for _, d := range deltas {
			results = append(results, f.Submit([]ingest.Delta{d}))
		}
		for _, ch := range results {
			res := <-ch
			if res.Err != nil {
				log.Fatalf("saga-construct: batch %d: %v", res.Seq, res.Err)
			}
			fmt.Printf("  %s\n", res.Stats[0])
		}
		if err := f.Close(); err != nil {
			log.Fatalf("saga-construct: %v", err)
		}
		fs := f.Stats()
		fmt.Printf("feed: %d batches submitted, %d committed, %d published in %d publish groups (%.1f batches/group)\n",
			fs.Submitted, fs.Committed, fs.Published, fs.PublishGroups,
			float64(fs.Published)/float64(max(fs.PublishGroups, 1)))
	} else {
		for _, d := range deltas {
			stats, err := p.ConsumeDelta(d)
			if err != nil {
				log.Fatalf("saga-construct: %v", err)
			}
			fmt.Printf("  %s\n", stats)
		}
	}

	conflicts := p.DrainConflicts()
	st := p.Stats()
	fmt.Printf("\nfinal KG: %d entities, %d facts, %d types, %d sources, %d links, log lsn %d, %d conflicts curated\n",
		st.Graph.Entities, st.Graph.Facts, st.Graph.Types, st.Graph.Sources, st.Links, st.LogLSN, len(conflicts))
	if st.Partitions > 1 {
		fmt.Printf("partitions: %d type-hash pipelines; volatile exchange: %d enqueued, %d collapsed, %d applied in %d flushes\n",
			st.Partitions, st.Volatile.Enqueued, st.Volatile.Collapsed, st.Volatile.Applied, st.Volatile.Flushes)
	}
	if !*fullScan {
		fmt.Printf("block index: %d entities, %d keys across %d types; %d probes, %d refreshes\n",
			st.BlockIndex.Entities, st.BlockIndex.Keys, st.BlockIndex.Types, st.BlockIndex.Probes, st.BlockIndex.Refreshes)
	}
	fmt.Printf("fusion: %d commits fused %d payloads into %d targets (%.1f payloads/target, perentity=%v)\n",
		st.Fusion.Commits, st.Fusion.Payloads, st.Fusion.Targets,
		float64(st.Fusion.Payloads)/float64(max(st.Fusion.Targets, 1)), *perEntity)
}
