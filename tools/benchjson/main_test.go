package main

import (
	"bufio"
	"strings"
	"testing"
)

const sample = `
goos: linux
BenchmarkStandingFeedCrossBatch-2   1   500000000 ns/op   1.80 feed-speedup-x   2.4 publish-conflation-x   150.0 serial-ms
BenchmarkStandingFeedCrossBatch-2   1   520000000 ns/op   1.60 feed-speedup-x   3.0 publish-conflation-x   140.0 serial-ms
BenchmarkSnapshotUnderLoad-2        1   100000000 ns/op   1.20 snapshot-growth-x   3.1 shared-read-speedup-x
PASS
ok   saga 1.234s
`

func parseString(t *testing.T, s string) Report {
	t.Helper()
	r, err := parse(bufio.NewScanner(strings.NewReader(s)))
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestParseMergesRepsFavorably(t *testing.T) {
	rep := parseString(t, sample)
	if len(rep.Results) != 2 {
		t.Fatalf("results = %d", len(rep.Results))
	}
	feed := rep.Results[0]
	if feed.Name != "StandingFeedCrossBatch" || feed.Reps != 2 {
		t.Fatalf("merged result = %+v", feed)
	}
	// Gated metrics keep the favorable rep; time-like metrics the minimum.
	if feed.Metrics["feed-speedup-x"] != 1.80 {
		t.Fatalf("speedup merge = %v (want max)", feed.Metrics["feed-speedup-x"])
	}
	if feed.Metrics["publish-conflation-x"] != 3.0 {
		t.Fatalf("conflation merge = %v (want max)", feed.Metrics["publish-conflation-x"])
	}
	if feed.Metrics["ns/op"] != 5e8 {
		t.Fatalf("ns/op merge = %v (want min)", feed.Metrics["ns/op"])
	}
	if feed.Metrics["serial-ms"] != 140.0 {
		t.Fatalf("serial-ms merge = %v (want min)", feed.Metrics["serial-ms"])
	}
	if rep.Env.GoVersion == "" || rep.Env.GOMAXPROCS == 0 {
		t.Fatalf("env metadata missing: %+v", rep.Env)
	}
}

func TestConservativeMergeRecordsFloor(t *testing.T) {
	conservative = true
	defer func() { conservative = false }()
	rep := parseString(t, sample)
	feed := rep.Results[0]
	if feed.Metrics["feed-speedup-x"] != 1.60 {
		t.Fatalf("conservative speedup merge = %v (want floor 1.60)", feed.Metrics["feed-speedup-x"])
	}
	if feed.Metrics["ns/op"] != 5e8 {
		t.Fatalf("time-like merge should stay min: %v", feed.Metrics["ns/op"])
	}
}

func TestCompareGates(t *testing.T) {
	baseline := parseString(t, sample)
	// Identical run: no regressions (some gates noted as absent from the
	// baseline is fine — here both gated benchmarks are present).
	if regs, _ := compare(baseline, baseline, 0.15); len(regs) != 0 {
		t.Fatalf("self-compare regressed: %v", regs)
	}
	// A >15% drop on a higher-is-better gate regresses; smaller drops pass.
	degraded := parseString(t, strings.NewReplacer(
		"1.80 feed-speedup-x", "1.40 feed-speedup-x",
		"1.60 feed-speedup-x", "1.30 feed-speedup-x").Replace(sample))
	regs, _ := compare(degraded, baseline, 0.15)
	if len(regs) != 1 || !strings.Contains(regs[0], "feed-speedup-x") {
		t.Fatalf("regressions = %v", regs)
	}
	slight := parseString(t, strings.NewReplacer("1.80 feed-speedup-x", "1.70 feed-speedup-x").Replace(sample))
	if regs, _ := compare(slight, baseline, 0.15); len(regs) != 0 {
		t.Fatalf("within-threshold drop flagged: %v", regs)
	}
	// snapshot-growth-x is recorded but ungated (noise around 1.0): rising
	// past the threshold must NOT fail the gate.
	grown := parseString(t, strings.NewReplacer("1.20 snapshot-growth-x", "1.60 snapshot-growth-x").Replace(sample))
	if regs, _ := compare(grown, baseline, 0.15); len(regs) != 0 {
		t.Fatalf("ungated metric flagged: %v", regs)
	}
	// A second gated benchmark's speedup dropping past threshold fails.
	slowReads := parseString(t, strings.NewReplacer("3.1 shared-read-speedup-x", "2.0 shared-read-speedup-x").Replace(sample))
	if regs, _ := compare(slowReads, baseline, 0.15); len(regs) != 1 || !strings.Contains(regs[0], "shared-read-speedup-x") {
		t.Fatalf("shared-read regression missed: %v", regs)
	}
	// A gated benchmark vanishing from the run is itself a regression.
	missing := parseString(t, strings.Split(sample, "BenchmarkSnapshotUnderLoad")[0])
	regs, _ = compare(missing, baseline, 0.15)
	if len(regs) == 0 {
		t.Fatal("missing gated benchmark not flagged")
	}
}
