// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive each commit's benchmark metrics as a
// machine-readable artifact (BENCH_ci.json) and the performance trajectory
// of the construction and serving paths is recorded per commit.
//
// Each benchmark result line
//
//	BenchmarkFoo-8   1   123456 ns/op   4.50 speedup-x
//
// becomes {"name": "Foo", "iterations": 1, "metrics": {"ns/op": 123456,
// "speedup-x": 4.5}}. Non-benchmark lines (logs, PASS/ok) are ignored.
// Repeated lines for the same benchmark (`-count=N`) merge into one result:
// time-like metrics keep their minimum, everything else its maximum, except
// where a regression gate declares the favorable direction. The document
// records the runner environment (Go version, OS/arch, GOMAXPROCS, CPU
// model) so metric trajectories across commits are interpretable.
//
// With -compare=BASELINE.json the command additionally diffs the gated
// metrics against a committed baseline after writing the JSON, and exits
// non-zero when any gated metric regresses by more than its tolerated
// relative regression (-threshold, or the gate's own override). Most gated
// metrics are machine-relative ratios, so a baseline recorded on one
// machine remains meaningful on another; the serving-tier latency and
// throughput gates are absolute and carry deliberately generous per-gate
// thresholds instead.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// Reps counts how many result lines merged into this entry (`-count`).
	Reps    int                `json:"reps,omitempty"`
	Metrics map[string]float64 `json:"metrics"`
}

// Env describes the runner, so trajectories across commits are comparable.
type Env struct {
	GoVersion  string `json:"go_version"`
	OS         string `json:"os"`
	Arch       string `json:"arch"`
	GOMAXPROCS int    `json:"gomaxprocs"`
	NumCPU     int    `json:"num_cpu"`
	CPUModel   string `json:"cpu_model,omitempty"`
}

// Report is the document CI uploads.
type Report struct {
	Commit  string   `json:"commit,omitempty"`
	Env     Env      `json:"env"`
	Results []Result `json:"results"`
}

// Gate is one regression-gated metric. Higher declares the favorable
// direction. Most gated metrics are ratios (speedup-x, growth-x), directly
// comparable across machines under the global -threshold; absolute metrics
// (latency, throughput) set a per-gate Threshold generous enough to absorb
// runner variance while still catching order-of-magnitude regressions.
type Gate struct {
	Bench  string
	Metric string
	Higher bool // true: larger is better; false: smaller is better
	// Threshold overrides the global -threshold for this gate when > 0
	// (maximum tolerated relative regression against the baseline).
	Threshold float64
}

// gates lists the metrics the CI bench job fails on when they regress more
// than the threshold against BENCH_baseline.json.
var gates = []Gate{
	{Bench: "IndexedLinkingKGGrowth", Metric: "indexed-speedup-x", Higher: true},
	{Bench: "PipelinedConsumeBatchedFusion", Metric: "batched-fusion-speedup-x", Higher: true},
	{Bench: "SnapshotUnderLoad", Metric: "shared-read-speedup-x", Higher: true},
	{Bench: "StandingFeedCrossBatch", Metric: "feed-speedup-x", Higher: true},
	{Bench: "PartitionedIngestScaling", Metric: "ingest-scaling-x", Higher: true},
	{Bench: "StandingFeedDiskBackend", Metric: "disk-overhead-x", Higher: false},
	// Serving-tier gates: p99 latency and throughput are absolute, so their
	// thresholds are generous (catch the serving path falling off a cliff —
	// snapshot churn, lock contention — not runner jitter); the cached-vs-
	// uncached ratio additionally hard-fails inside the benchmark below
	// 1.5x, so the JSON gate only guards against large drifts.
	// Recovery cold start must stay checkpoint-bounded: the ratio of aged to
	// young recovery time hovers near 1 and must never drift toward the log
	// age factor. The timings are ms-scale, so the threshold is generous;
	// the benchmark itself hard-fails above 3.0x.
	{Bench: "RecoveryColdStart", Metric: "recovery-flat-x", Higher: false, Threshold: 1.0},
	{Bench: "ServeUnderIngest", Metric: "p99-ms", Higher: false, Threshold: 2.0},
	{Bench: "ServeUnderIngest", Metric: "qps", Higher: true, Threshold: 0.6},
	{Bench: "ServeUnderIngest", Metric: "cached-speedup-x", Higher: true, Threshold: 0.9},
	// Recorded but deliberately not gated here:
	//   - snapshot-growth-x hovers around 1.0 (µs-scale measurements), so a
	//     relative diff against the baseline amplifies noise; the benchmark
	//     itself hard-fails unless snapshot latency stays flat relative to
	//     the deep-copy comparator, which is the robust form of that gate.
	//   - publish-conflation-x depends on how far the publisher falls
	//     behind, i.e. on core count and scheduling, so it is not
	//     comparable across machines.
}

// gateDirection reports the favorable direction for a metric, if gated.
func gateDirection(bench, metric string) (higher, gated bool) {
	for _, g := range gates {
		if g.Bench == bench && g.Metric == metric {
			return g.Higher, true
		}
	}
	return false, false
}

// timeLike reports whether a metric name denotes a duration or cost where
// smaller is better (the conventional merge for repeated benchmark runs).
func timeLike(metric string) bool {
	return strings.HasSuffix(metric, "ns/op") || strings.HasSuffix(metric, "-ms") ||
		strings.HasSuffix(metric, "-us") || strings.HasSuffix(metric, "B/op") ||
		strings.HasSuffix(metric, "allocs/op")
}

// conservative flips the merge direction: set when generating a baseline,
// so the committed reference records the floor of the measured distribution
// (for higher-is-better gates) instead of its peak — the regression gate
// then fires on genuine regressions, not on an unlucky rep falling short of
// a lucky baseline.
var conservative bool

// merge folds a rep's metric value into the accumulated one: gate direction
// if gated (flipped under -conservative), min for time-like metrics, max
// otherwise.
func merge(bench, metric string, old, v float64) float64 {
	if higher, gated := gateDirection(bench, metric); gated {
		if conservative {
			higher = !higher
		}
		if higher == (v > old) {
			return v
		}
		return old
	}
	if timeLike(metric) {
		if v < old {
			return v
		}
		return old
	}
	if v > old {
		return v
	}
	return old
}

// cpuModel reads the CPU model name, best-effort (Linux only).
func cpuModel() string {
	data, err := os.ReadFile("/proc/cpuinfo")
	if err != nil {
		return ""
	}
	for _, line := range strings.Split(string(data), "\n") {
		if name, ok := strings.CutPrefix(line, "model name"); ok {
			if _, val, ok := strings.Cut(name, ":"); ok {
				return strings.TrimSpace(val)
			}
		}
	}
	return ""
}

// parse reads `go test -bench` output into a report, merging `-count` reps.
func parse(r *bufio.Scanner) (Report, error) {
	report := Report{
		Commit: os.Getenv("GITHUB_SHA"),
		Env: Env{
			GoVersion:  runtime.Version(),
			OS:         runtime.GOOS,
			Arch:       runtime.GOARCH,
			GOMAXPROCS: runtime.GOMAXPROCS(0),
			NumCPU:     runtime.NumCPU(),
			CPUModel:   cpuModel(),
		},
		Results: []Result{},
	}
	index := make(map[string]int)
	for r.Scan() {
		line := strings.TrimSpace(r.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "BenchmarkFoo ... --- FAIL" status lines
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		metrics := make(map[string]float64)
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			metrics[fields[i+1]] = v
		}
		if at, seen := index[name]; seen {
			res := &report.Results[at]
			res.Reps++
			res.Iterations += iters
			for m, v := range metrics {
				if old, ok := res.Metrics[m]; ok {
					res.Metrics[m] = merge(name, m, old, v)
				} else {
					res.Metrics[m] = v
				}
			}
			continue
		}
		index[name] = len(report.Results)
		report.Results = append(report.Results, Result{Name: name, Iterations: iters, Reps: 1, Metrics: metrics})
	}
	return report, r.Err()
}

// compare diffs the gated metrics of current against the baseline, returning
// a line per regression beyond threshold (relative). A benchmark present in
// the baseline but missing from the current run is itself a regression —
// gate coverage must not silently disappear. Gates absent from the baseline
// (newly added benchmarks) are noted and skipped.
func compare(current, baseline Report, threshold float64) (regressions, notes []string) {
	cur := make(map[string]Result, len(current.Results))
	for _, r := range current.Results {
		cur[r.Name] = r
	}
	base := make(map[string]Result, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}
	for _, g := range gates {
		b, ok := base[g.Bench]
		if !ok {
			notes = append(notes, fmt.Sprintf("gate %s/%s: not in baseline yet, skipped", g.Bench, g.Metric))
			continue
		}
		bv, ok := b.Metrics[g.Metric]
		if !ok {
			notes = append(notes, fmt.Sprintf("gate %s/%s: baseline lacks the metric, skipped", g.Bench, g.Metric))
			continue
		}
		c, ok := cur[g.Bench]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("gated benchmark %s missing from this run", g.Bench))
			continue
		}
		cv, ok := c.Metrics[g.Metric]
		if !ok {
			regressions = append(regressions, fmt.Sprintf("gated metric %s/%s missing from this run", g.Bench, g.Metric))
			continue
		}
		var rel float64 // how much worse, relative to baseline
		if g.Higher {
			rel = (bv - cv) / bv
		} else {
			rel = (cv - bv) / bv
		}
		limit := threshold
		if g.Threshold > 0 {
			limit = g.Threshold
		}
		if rel > limit {
			dir := "≥"
			if !g.Higher {
				dir = "≤"
			}
			regressions = append(regressions, fmt.Sprintf(
				"%s %s regressed %.1f%% vs baseline: %.3f (want %s within %.0f%% of %.3f)",
				g.Bench, g.Metric, rel*100, cv, dir, limit*100, bv))
		}
	}
	return regressions, notes
}

func main() {
	comparePath := flag.String("compare", "", "baseline BENCH JSON to gate regressions against (empty = no gating)")
	threshold := flag.Float64("threshold", 0.15, "maximum relative regression tolerated for gated metrics")
	flag.BoolVar(&conservative, "conservative", false,
		"merge reps conservatively (floor of gated metrics) — use when generating BENCH_baseline.json from several runs")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	report, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	if *comparePath == "" {
		return
	}
	data, err := os.ReadFile(*comparePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read baseline: %v\n", err)
		os.Exit(1)
	}
	var baseline Report
	if err := json.Unmarshal(data, &baseline); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: parse baseline: %v\n", err)
		os.Exit(1)
	}
	regressions, notes := compare(report, baseline, *threshold)
	for _, n := range notes {
		fmt.Fprintf(os.Stderr, "benchjson: note: %s\n", n)
	}
	if len(regressions) > 0 {
		for _, r := range regressions {
			fmt.Fprintf(os.Stderr, "benchjson: REGRESSION: %s\n", r)
		}
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d gated metrics within tolerance of baseline\n", len(gates))
}
