// Command benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout, so CI can archive each commit's benchmark metrics as a
// machine-readable artifact (BENCH_ci.json) and the performance trajectory
// of the construction and serving paths is recorded per commit.
//
// Each benchmark result line
//
//	BenchmarkFoo-8   1   123456 ns/op   4.50 speedup-x
//
// becomes {"name": "Foo", "iterations": 1, "metrics": {"ns/op": 123456,
// "speedup-x": 4.5}}. Non-benchmark lines (logs, PASS/ok) are ignored.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"strconv"
	"strings"
)

// Result is one benchmark's parsed metrics.
type Result struct {
	Name       string             `json:"name"`
	Iterations int                `json:"iterations"`
	Metrics    map[string]float64 `json:"metrics"`
}

// Report is the document CI uploads.
type Report struct {
	Commit  string   `json:"commit,omitempty"`
	Results []Result `json:"results"`
}

func main() {
	report := Report{Commit: os.Getenv("GITHUB_SHA"), Results: []Result{}}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			continue
		}
		iters, err := strconv.Atoi(fields[1])
		if err != nil {
			continue // e.g. "BenchmarkFoo ... --- FAIL" status lines
		}
		name := strings.TrimPrefix(fields[0], "Benchmark")
		if i := strings.LastIndex(name, "-"); i > 0 {
			name = name[:i] // strip the -GOMAXPROCS suffix
		}
		res := Result{Name: name, Iterations: iters, Metrics: make(map[string]float64)}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				continue
			}
			res.Metrics[fields[i+1]] = v
		}
		report.Results = append(report.Results, res)
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
}
