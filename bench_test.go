// Package saga's root benchmark harness: one benchmark per table/figure of
// the paper's evaluation plus the in-text claims and design ablations. Each
// benchmark wraps the corresponding experiment in internal/experiments and
// reports the paper's headline quantity as a custom metric, so
// `go test -bench=. -benchmem` regenerates every reported result. The
// experiment index in DESIGN.md and the measured-vs-paper record in
// EXPERIMENTS.md reference these benchmarks by name.
package saga_test

import (
	"testing"

	"saga/internal/experiments"
)

// BenchmarkFig8ViewComputation regenerates Figure 8: analytics-store view
// computation vs the legacy row-at-a-time system across six production
// views. Reported metrics: average and maximum speedup.
func BenchmarkFig8ViewComputation(b *testing.B) {
	var last experiments.Fig8Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8(experiments.Fig8Spec{})
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	var sum, max float64
	for _, row := range last.Rows {
		sum += row.Speedup
		if row.Speedup > max {
			max = row.Speedup
		}
	}
	b.ReportMetric(sum/float64(len(last.Rows)), "avg-speedup-x")
	b.ReportMetric(max, "max-speedup-x")
	b.Logf("\n%s", last)
}

// BenchmarkViewDependencyReuse regenerates the §3.2 in-text claim: run-time
// improvement from shared-view reuse in the Figure 7 dependency DAG
// (paper: 26%).
func BenchmarkViewDependencyReuse(b *testing.B) {
	var last experiments.ReuseResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ViewReuse()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.ImprovementPct, "improvement-%")
	b.Logf("\n%s", last)
}

// BenchmarkFig12KGGrowth regenerates Figure 12: relative growth of facts and
// entities across the simulated quarterly timeline with the Saga inflection
// (paper: ~33x facts, ~6.5x entities).
func BenchmarkFig12KGGrowth(b *testing.B) {
	var last experiments.GrowthResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig12()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	final := last.Points[len(last.Points)-1]
	b.ReportMetric(final.FactsRel, "facts-growth-x")
	b.ReportMetric(final.EntitiesRel, "entities-growth-x")
	b.Logf("\n%s", last)
}

// BenchmarkFig14aNERDText regenerates Figure 14(a): NERD vs the deployed
// baseline on text annotation across confidence cutoffs (paper: recall gain
// ~70% at 0.9, diminishing below; precision gain up to 3.4%).
func BenchmarkFig14aNERDText(b *testing.B) {
	var last experiments.Fig14aResult
	for i := 0; i < b.N; i++ {
		last = experiments.Fig14a()
	}
	b.ReportMetric(last.Rows[0].RecallGain, "recall-gain-%@0.9")
	b.ReportMetric(last.Rows[0].PrecisionGain, "precision-gain-%@0.9")
	b.Logf("\n%s", last)
}

// BenchmarkFig14bNERDObjectResolution regenerates Figure 14(b): object
// resolution at the 0.9 cutoff, NERD and NERD+type-hints vs the baseline
// (paper: +type hints gives precision +~10%, recall +~25%).
func BenchmarkFig14bNERDObjectResolution(b *testing.B) {
	var last experiments.Fig14bResult
	for i := 0; i < b.N; i++ {
		last = experiments.Fig14b()
	}
	b.ReportMetric((last.NERDTypeHints.Precision-last.Baseline.Precision)/last.Baseline.Precision*100, "precision-gain-%")
	b.ReportMetric((last.NERDTypeHints.Recall-last.Baseline.Recall)/last.Baseline.Recall*100, "recall-gain-%")
	b.Logf("\n%s", last)
}

// BenchmarkLiveQueryLatency regenerates the §4.2/§6.1 serving claim: p95
// latency of the live KGQ engine under a concurrent mixed workload
// (paper: p95 < 20ms at billions of queries per day).
func BenchmarkLiveQueryLatency(b *testing.B) {
	var last experiments.LatencyResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.LiveLatency(2000, 8)
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(float64(last.P95.Microseconds())/1000, "p95-ms")
	b.ReportMetric(last.QPS, "qps")
	b.Logf("\n%s", last)
}

// BenchmarkLearnedSimilarityRecall regenerates the §5.1 in-text claim:
// learned string similarity improves matching recall by more than 20 points
// on synonym/typo-rich data.
func BenchmarkLearnedSimilarityRecall(b *testing.B) {
	var last experiments.SimRecallResult
	for i := 0; i < b.N; i++ {
		last = experiments.LearnedSimilarityRecall()
	}
	b.ReportMetric(last.GainPoints, "recall-gain-points")
	b.Logf("\n%s", last)
}

// BenchmarkEmbeddingTraining regenerates the §5.3 comparison: Marius-style
// buffer-aware partition scheduling vs naive ordering (IO volume), plus
// TransE/DistMult link-prediction quality.
func BenchmarkEmbeddingTraining(b *testing.B) {
	var last experiments.EmbeddingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.EmbeddingTraining()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.IOReduction, "io-reduction-x")
	b.ReportMetric(last.TransEMeanRank, "transe-mean-rank")
	b.Logf("\n%s", last)
}

// BenchmarkConstructionPipeline regenerates the §2.4 design claims:
// delta-based construction vs full rebuild, parallel vs sequential source
// pipelines, and intra-delta workers=1 vs workers=N (which must produce an
// identical KG).
func BenchmarkConstructionPipeline(b *testing.B) {
	var last experiments.ConstructionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ConstructionPipeline(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.IntraIdentical {
			b.Fatal("intra-delta parallel KG diverged from sequential")
		}
		last = res
	}
	b.ReportMetric(last.DeltaSpeedup, "delta-speedup-x")
	b.ReportMetric(last.ParallelSpeedup, "parallel-speedup-x")
	b.ReportMetric(last.IntraSpeedup, "intra-delta-speedup-x")
	b.Logf("\n%s", last)
}

// BenchmarkIndexedLinkingKGGrowth measures the incremental-blocking-index
// claim as the KG grows: per-delta linking cost with the persistent block
// index tracks |delta| while the full-scan path tracks the accumulated |KG|,
// and both construct byte-identical graphs. The name carries "KGGrowth" so
// the CI bench job records the speedup trajectory per commit.
func BenchmarkIndexedLinkingKGGrowth(b *testing.B) {
	var last experiments.IndexedLinkingResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.IndexedLinking(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("indexed linking KG diverged from full scan")
		}
		if !res.DeltaScaled {
			b.Fatalf("indexed candidate volume did not scale with |delta|: scan growth %.2fx vs indexed %.2fx",
				res.ScanGrowth, res.IndexedGrowth)
		}
		last = res
	}
	b.ReportMetric(last.SpeedupAtLargest, "indexed-speedup-x")
	b.ReportMetric(last.ScanGrowth, "scan-cmp-growth-x")
	b.ReportMetric(last.IndexedGrowth, "indexed-cmp-growth-x")
	b.Logf("\n%s", last)
}

// BenchmarkPipelinedConsumeBatchedFusion measures the post-index commit hot
// path: per-target batched fusion vs the per-entity baseline on
// commit-dominated update batches whose payloads share target KG entities
// (one graph round-trip and one truth-discovery pass per target instead of
// one per payload), plus the pipelined vs barrier Consume schedule on the
// linking-heavy load batch. All paths must construct byte-identical KGs, and
// the batched path must not regress against the per-entity ablation
// baseline. The name carries "PipelinedConsume" so the CI bench job records
// fusion throughput per commit in BENCH_ci.json.
func BenchmarkPipelinedConsumeBatchedFusion(b *testing.B) {
	var last experiments.BatchedFusionResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.BatchedFusion(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("batched/pipelined consume KG diverged from per-entity barrier consume")
		}
		if res.FusionSpeedup < 1.15 {
			b.Fatalf("batched fusion regressed against the per-entity baseline: %.2fx (want >= 1.15x)", res.FusionSpeedup)
		}
		last = res
	}
	b.ReportMetric(last.FusionSpeedup, "batched-fusion-speedup-x")
	b.ReportMetric(last.PipelineSpeedup, "pipelined-consume-speedup-x")
	b.ReportMetric(float64(last.Payloads)/float64(last.Targets), "payloads-per-target")
	b.Logf("\n%s", last)
}

// BenchmarkStandingFeedCrossBatch measures the cross-batch pipelining claim:
// a stream of delta batches ingested through the standing feed — batch N+1's
// validation/snapshot/compute starting at batch N's last commit, publishing
// on the ordered async group-commit publisher — versus serial ConsumeDeltas
// calls that pay the synchronous publish + agent catch-up between batches.
// Both platforms run a durable operation log, both must leave the KG and the
// graph replica byte-identical, and the feed must deliver at least 1.15x
// end-to-end throughput. The name carries "StandingFeed" so the CI bench job
// records the trajectory per commit in BENCH_ci.json, where the metric is
// regression-gated against BENCH_baseline.json.
func BenchmarkStandingFeedCrossBatch(b *testing.B) {
	var last experiments.StandingFeedResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.StandingFeed(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("standing feed KG or replica diverged from serial ConsumeDeltas")
		}
		if res.FeedSpeedup < 1.15 {
			b.Fatalf("standing feed regressed against serial ConsumeDeltas: %.2fx (want >= 1.15x)", res.FeedSpeedup)
		}
		last = res
	}
	b.ReportMetric(last.FeedSpeedup, "feed-speedup-x")
	b.ReportMetric(last.Conflation, "publish-conflation-x")
	b.ReportMetric(last.SerialMS, "serial-ms")
	b.ReportMetric(last.FeedMS, "feed-ms")
	b.Logf("\n%s", last)
}

// BenchmarkPartitionedIngestScaling measures partitioned construction on the
// standing-feed workload: N=4 type-hash partitions ingesting through the
// standing feed versus the single-pipeline platform, both over durable logs.
// The partitioned gain comes from the exchange protocol's window deferral
// (volatile backlog collapse, once-per-window publishing, skipped cache
// refreshes), so it holds on a single core. Both platforms must leave the KG,
// replica, entity store, and text index byte-identical — the cross-partition
// linking contract — and the scaling factor hard-fails below 2.5x. The name
// carries "PartitionedIngest" so the CI bench job records the trajectory per
// commit in BENCH_ci.json, where the metric is regression-gated against
// BENCH_baseline.json.
func BenchmarkPartitionedIngestScaling(b *testing.B) {
	var last experiments.PartitionedIngestResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.PartitionedIngest(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("partitioned serving state diverged from the single pipeline")
		}
		if res.ScalingX < 2.5 {
			b.Fatalf("partitioned ingest scaling regressed: %.2fx (want >= 2.5x)", res.ScalingX)
		}
		last = res
	}
	b.ReportMetric(last.ScalingX, "ingest-scaling-x")
	b.ReportMetric(last.SingleMS, "single-ms")
	b.ReportMetric(last.PartitionedMS, "partitioned-ms")
	b.Logf("\n%s", last)
}

// BenchmarkHotKeySkewFusion measures the adversarial counterpart: a
// Zipf-skewed celebrity mention stream mass-fusing into a few hot targets of
// one type, so type-hash partitioning pins the whole fusion load on one
// partition. Byte identity must survive the skew; the scaling factor is
// recorded (expected near 1x) but deliberately not gated — its collapse is
// the finding, not a regression.
func BenchmarkHotKeySkewFusion(b *testing.B) {
	var last experiments.HotKeySkewResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.HotKeySkew(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("partitioned serving state diverged from the single pipeline under skew")
		}
		last = res
	}
	b.ReportMetric(last.SkewScalingX, "skew-scaling-x")
	b.ReportMetric(last.PayloadsPerTarget, "payloads-per-target")
	b.ReportMetric(last.MaxPartitionShare, "max-partition-share")
	b.Logf("\n%s", last)
}

// BenchmarkStandingFeedDiskBackend measures what the disk storage backend
// (segment-file staging, mmap-read entity store, shared record log) costs on
// the standing-feed workload against the memory backend's historical
// configuration. The two runs must leave the KG, replica, entity store, and
// text index byte-identical, and the disk platform must rebuild its replica
// from its files after a reopen — the correctness bar always holds. The
// disk-overhead ratio is the tracked metric; the name carries "StandingFeed"
// so the CI bench regex records the trajectory per commit in BENCH_ci.json,
// where the metric is regression-gated against BENCH_baseline.json.
func BenchmarkStandingFeedDiskBackend(b *testing.B) {
	var last experiments.StorageBackendsResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.StorageBackends(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("disk backend state diverged from memory backend")
		}
		if !res.Recovered {
			b.Fatal("disk backend failed to rebuild the replica after reopen")
		}
		last = res
	}
	b.ReportMetric(last.DiskOverheadX, "disk-overhead-x")
	b.ReportMetric(last.MemoryMS, "memory-ms")
	b.ReportMetric(last.DiskMS, "disk-ms")
	b.Logf("\n%s", last)
}

// BenchmarkSnapshotUnderLoad measures the sharded copy-on-write graph on the
// serving path: Snapshot() latency must stay roughly flat as the KG grows 5x
// (the deep-copy comparator grows linearly — that was the pre-COW Snapshot
// the view manager and NERD builds paid per refresh), and clone-free shared
// reads must beat the clone-per-read baseline by at least 1.15x while a
// writer ingests concurrently. Both claims gate the CI bench job; the
// correctness bits (snapshots frozen at their cut, byte-identical content
// across shard counts and copies) must always hold. The name carries
// "SnapshotUnderLoad" so the CI bench regex records the trajectory per
// commit in BENCH_ci.json.
func BenchmarkSnapshotUnderLoad(b *testing.B) {
	var last experiments.GraphStoreResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.GraphStore()
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("sharded/COW graph content diverged across shard counts, deep copies, or snapshots")
		}
		if !res.SnapshotFrozen {
			b.Fatal("snapshot moved while the live graph advanced")
		}
		if !res.SnapshotFlat {
			b.Fatalf("snapshot latency not flat in |KG|: %.2fx over 5x growth (deep copy %.2fx)",
				res.SnapshotGrowth, res.DeepCopyGrowth)
		}
		if res.SharedReadSpeedup < 1.15 {
			b.Fatalf("shared reads regressed against clone-per-read baseline: %.2fx (want >= 1.15x)",
				res.SharedReadSpeedup)
		}
		last = res
	}
	b.ReportMetric(last.SnapshotGrowth, "snapshot-growth-x")
	b.ReportMetric(last.DeepCopyGrowth, "deepcopy-growth-x")
	b.ReportMetric(last.SnapshotLargeUS, "snapshot-us")
	b.ReportMetric(last.SharedReadSpeedup, "shared-read-speedup-x")
	b.ReportMetric(last.ShardSpeedup, "shard-scaling-x")
	b.Logf("\n%s", last)
}

// BenchmarkServeUnderIngest measures the production serving tier (§4, §6.1):
// concurrent mixed KGQ/entity/search traffic over the /v1 HTTP API while a
// standing feed churns stable construction and a streaming writer updates
// live entities. Queries execute on versioned immutable snapshots routed
// across live replicas, with plan caching and (plan, version)-keyed result
// caching. Gated metrics: p99 request latency and queries/sec (absolute,
// generous thresholds for runner noise) plus the cached-vs-uncached fast-path
// speedup. The correctness property — cached and uncached execution pinned to
// one snapshot return byte-identical results while ingestion writes — must
// always hold. The name carries "ServeUnderIngest" so the CI bench job
// records the trajectory per commit in BENCH_ci.json, where the metrics are
// regression-gated against BENCH_baseline.json.
func BenchmarkServeUnderIngest(b *testing.B) {
	var last experiments.ServeUnderIngestResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.ServeUnderIngest(0, 0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.CacheIdentical {
			b.Fatal("cached and uncached query results diverged under concurrent ingestion")
		}
		if res.CachedSpeedup < 1.5 {
			b.Fatalf("serving fast path regressed against uncached execution: %.2fx (want >= 1.5x)", res.CachedSpeedup)
		}
		last = res
	}
	b.ReportMetric(last.P99MS, "p99-ms")
	b.ReportMetric(last.QPS, "qps")
	b.ReportMetric(last.CachedSpeedup, "cached-speedup-x")
	b.ReportMetric(last.HitRate, "result-hit-rate")
	b.Logf("\n%s", last)
}

// BenchmarkBlockingAblation measures the blocking design choice: candidate
// comparisons and quality vs quadratic pair generation.
func BenchmarkBlockingAblation(b *testing.B) {
	var last experiments.BlockingResult
	for i := 0; i < b.N; i++ {
		last = experiments.BlockingAblation()
	}
	b.ReportMetric(last.ReductionX, "comparison-reduction-x")
	b.ReportMetric(last.BlockedF1, "blocked-f1")
	b.Logf("\n%s", last)
}

// BenchmarkResolutionAblation measures correlation clustering vs greedy
// transitive closure (pair F1 and the ≤1-KG-entity constraint violations)
// plus sharded parallel resolution with workers=1 vs workers=N.
func BenchmarkResolutionAblation(b *testing.B) {
	var last experiments.ResolutionResult
	for i := 0; i < b.N; i++ {
		last = experiments.ResolutionAblation(0)
		if !last.ResolveIdentical {
			b.Fatal("parallel resolution diverged from sequential")
		}
	}
	b.ReportMetric(last.CorrelationF1, "correlation-f1")
	b.ReportMetric(float64(last.ClosureViolations), "closure-violations")
	b.ReportMetric(last.ResolveSpeedup, "resolve-speedup-x")
	b.Logf("\n%s", last)
}

// BenchmarkVolatileOverwrite measures the volatile-partition overwrite path
// vs full fusion for high-churn predicates (§2.4).
func BenchmarkVolatileOverwrite(b *testing.B) {
	var last experiments.VolatileResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.VolatileOverwrite()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	b.ReportMetric(last.Speedup, "overwrite-speedup-x")
	b.Logf("\n%s", last)
}

// BenchmarkCandidatePruning measures candidate-retrieval recall@k under
// importance-based pruning (§5.2).
func BenchmarkCandidatePruning(b *testing.B) {
	var last experiments.PruningResult
	for i := 0; i < b.N; i++ {
		last = experiments.CandidatePruning()
	}
	b.ReportMetric(last.Rows[len(last.Rows)-1].RecallAtK, "recall@16")
	b.Logf("\n%s", last)
}

// BenchmarkRecoveryColdStart regenerates the bounded-cold-start claim:
// recovery restores the latest checkpoint and replays only the log suffix,
// so cold-start time stays ~flat while the log ages 10x (recovery-flat-x),
// where full replay of the aged log degrades with its length. The identity
// assertion — checkpoint recovery byte-identical to full log replay — and
// the hard flatness bound fail the benchmark directly; the JSON gate guards
// the recorded ratio against drift.
func BenchmarkRecoveryColdStart(b *testing.B) {
	var last experiments.RecoveryColdStartResult
	for i := 0; i < b.N; i++ {
		res, err := experiments.RecoveryColdStart(0)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Identical {
			b.Fatal("checkpoint recovery diverged from full log replay")
		}
		if res.FlatX > 3.0 {
			b.Fatalf("cold start grew %.2fx while the log aged %dx; recovery is no longer checkpoint-bounded",
				res.FlatX, res.OldBatches/res.YoungBatches)
		}
		last = res
	}
	b.ReportMetric(last.FlatX, "recovery-flat-x")
	b.ReportMetric(last.YoungMS, "young-recovery-ms")
	b.ReportMetric(last.OldMS, "aged-recovery-ms")
	b.ReportMetric(last.ReplayMS, "full-replay-ms")
	b.ReportMetric(last.ReplaySlowdownX, "replay-slowdown-x")
	b.Logf("\n%s", last)
}
